//! The epoch-based dynamic graph store.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use exactsim_graph::{DiGraph, NodeId};

use crate::delta::{DeltaBuffer, Staged};
use crate::error::StoreError;
use crate::persist::{DurabilityInfo, DurableLog, WalRecord};

/// Default WAL auto-compaction threshold: once this many delta records
/// accumulate, a commit folds them into a fresh snapshot file.
pub const DEFAULT_COMPACT_EVERY: u64 = 64;

/// How [`GraphStore::open_or_create`] obtained its store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Opened {
    /// The directory held a store; it was recovered.
    Recovered,
    /// The directory held no store; a fresh one was initialized.
    Created,
}

/// A consistent `(graph, epoch)` pair published by a [`GraphStore`].
///
/// The two fields are captured under one lock, so the epoch always describes
/// exactly this graph. Holding a snapshot pins its graph in memory (it is an
/// `Arc`); later commits publish new snapshots without disturbing it.
#[derive(Clone, Debug)]
pub struct GraphSnapshot {
    /// The immutable graph of this epoch.
    pub graph: Arc<DiGraph>,
    /// The monotonic epoch the graph was published under (the initial graph
    /// is epoch 0).
    pub epoch: u64,
}

/// Per-stage wall-clock breakdown of one effective commit.
///
/// Mirrors the commit pipeline in order: stage the delta, merge it into a
/// new CSR graph, append to the WAL, fsync, publish the new epoch. The two
/// WAL fields are zero for in-memory stores (there is no log); every field
/// is zero for an empty commit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitTimings {
    /// Copying the staged insert/delete lists out of the delta buffer.
    pub staging: Duration,
    /// Materializing the new CSR graph ([`DiGraph::apply_delta`]).
    pub csr_merge: Duration,
    /// Writing the delta record into the WAL (buffered write).
    pub wal_append: Duration,
    /// `fsync` of the WAL — the durability point.
    pub fsync: Duration,
    /// Swapping the published `(graph, epoch)` pair under the write lock.
    pub publish: Duration,
}

/// What one [`GraphStore::commit`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitReport {
    /// The epoch now published. An empty commit reports the unchanged
    /// current epoch.
    pub epoch: u64,
    /// Edge insertions materialized by this commit.
    pub edges_inserted: usize,
    /// Edge deletions materialized by this commit.
    pub edges_deleted: usize,
    /// Node count of the published graph.
    pub num_nodes: usize,
    /// Edge count of the published graph.
    pub num_edges: usize,
    /// Wall-clock time spent materializing and swapping the new CSR graph
    /// (zero for an empty commit).
    pub build_time: Duration,
    /// Per-stage breakdown of `build_time` (all zero for an empty commit).
    pub timings: CommitTimings,
}

impl CommitReport {
    /// `true` iff this commit published a new epoch.
    pub fn advanced(&self) -> bool {
        self.edges_inserted + self.edges_deleted > 0
    }
}

struct Published {
    graph: Arc<DiGraph>,
    epoch: u64,
}

/// A dynamic graph store with epoch-based snapshot publication and optional
/// on-disk durability.
///
/// The store owns the current published [`DiGraph`] behind an `Arc` plus a
/// buffer of staged edge updates. Readers call [`GraphStore::snapshot`] (or
/// [`GraphStore::graph`] / [`GraphStore::epoch`]) and never block on writers
/// beyond a pointer-swap critical section; in-flight work simply finishes on
/// the snapshot it captured. Writers stage updates with
/// [`GraphStore::stage_insert`] / [`GraphStore::stage_delete`] — validated
/// against the node-id space and deduplicated against both the base graph
/// and each other — and [`GraphStore::commit`] materializes a new CSR graph
/// via the `O(m + Δ)` merge path ([`DiGraph::apply_delta`]), bumps the
/// monotonic epoch, and atomically swaps the published snapshot.
///
/// ## Durability
///
/// A store created with [`GraphStore::create`] (or recovered with
/// [`GraphStore::open`]) additionally persists its state under a data
/// directory: a full snapshot file per compaction point plus an append-only
/// delta WAL (see [`crate::persist`] for the formats and the recovery
/// protocol). Each commit appends its delta to the WAL and fsyncs *before*
/// publishing the new epoch, so `open` after a crash restarts the store into
/// exactly the last fully-committed epoch. [`GraphStore::save`] folds the
/// WAL into a fresh snapshot; commits also do this automatically once the
/// WAL exceeds a threshold ([`GraphStore::set_auto_compaction`]).
///
/// The node-id space is fixed at construction; updates change the edge set
/// only (growing the node space is a planned follow-up).
pub struct GraphStore {
    published: RwLock<Published>,
    /// Mirrors `published.epoch` for lock-free epoch polls on hot paths.
    epoch: AtomicU64,
    /// Staging is serialized; commit holds this lock end-to-end so the base
    /// graph cannot change under a validation or a CSR rebuild.
    pending: Mutex<DeltaBuffer>,
    /// `Some` for durable stores. Locked *after* `pending` everywhere (commit
    /// and save both hold `pending` first), so the order is consistent.
    durable: Mutex<Option<DurableLog>>,
    commits: AtomicU64,
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("GraphStore")
            .field("epoch", &snapshot.epoch)
            .field("num_nodes", &snapshot.graph.num_nodes())
            .field("num_edges", &snapshot.graph.num_edges())
            .field("durable", &self.durability())
            .finish_non_exhaustive()
    }
}

impl GraphStore {
    /// Creates an in-memory store publishing `graph` as epoch 0. Nothing is
    /// persisted; use [`GraphStore::create`] for a durable store.
    pub fn new(graph: Arc<DiGraph>) -> Self {
        Self::assemble(graph, 0, None)
    }

    /// Creates a durable store publishing `graph` as epoch 0 and initializes
    /// `dir` with its first snapshot file and an empty WAL. Fails with
    /// [`StoreError::StoreExists`] if `dir` already holds a store — recover
    /// those with [`GraphStore::open`] instead.
    pub fn create<P: AsRef<Path>>(dir: P, graph: Arc<DiGraph>) -> Result<Self, StoreError> {
        let log = DurableLog::create(dir.as_ref(), &graph, 0)?;
        Ok(Self::assemble(graph, 0, Some(log)))
    }

    /// Recovers a durable store from its data directory: loads the newest
    /// valid snapshot, replays the WAL to the last fully-committed epoch
    /// (truncating a torn tail), and publishes the result. The recovered
    /// store answers queries bit-identically to the pre-restart process at
    /// the same epoch.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        let (graph, epoch, log) = DurableLog::open(dir.as_ref())?;
        Ok(Self::assemble(Arc::new(graph), epoch, Some(log)))
    }

    /// [`GraphStore::open`] if `dir` holds a store, otherwise
    /// [`GraphStore::create`] with the graph produced by `init` (which is
    /// only invoked in the create case — recovery never pays for a graph
    /// build, and an `init` failure surfaces as its returned error). The
    /// boot path for servers with a `--data-dir`; the [`Opened`]
    /// discriminant says which branch ran, for logging.
    pub fn open_or_create<P, F>(dir: P, init: F) -> Result<(Self, Opened), StoreError>
    where
        P: AsRef<Path>,
        F: FnOnce() -> Result<Arc<DiGraph>, StoreError>,
    {
        match Self::open(dir.as_ref()) {
            Ok(store) => Ok((store, Opened::Recovered)),
            Err(e) if e.means_no_store_yet(dir.as_ref()) => {
                Ok((Self::create(dir, init()?)?, Opened::Created))
            }
            Err(e) => Err(e),
        }
    }

    fn assemble(graph: Arc<DiGraph>, epoch: u64, log: Option<DurableLog>) -> Self {
        GraphStore {
            published: RwLock::new(Published { graph, epoch }),
            epoch: AtomicU64::new(epoch),
            pending: Mutex::new(DeltaBuffer::new()),
            durable: Mutex::new(log),
            commits: AtomicU64::new(0),
        }
    }

    /// The current consistent `(graph, epoch)` pair.
    pub fn snapshot(&self) -> GraphSnapshot {
        let published = self.published.read().expect("published snapshot poisoned");
        GraphSnapshot {
            graph: Arc::clone(&published.graph),
            epoch: published.epoch,
        }
    }

    /// The currently published graph.
    pub fn graph(&self) -> Arc<DiGraph> {
        self.snapshot().graph
    }

    /// The currently published epoch (lock-free; pairs with the snapshot the
    /// same or a later epoch publishes).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The store's fixed node count.
    pub fn num_nodes(&self) -> usize {
        // The node-id space never changes, so any snapshot answers this.
        self.snapshot().graph.num_nodes()
    }

    /// Durable-state description (`None` for in-memory stores): data
    /// directory, WAL record count, epoch of the newest snapshot file.
    pub fn durability(&self) -> Option<DurabilityInfo> {
        self.durable
            .lock()
            .expect("durable log poisoned")
            .as_ref()
            .map(|log| log.info())
    }

    /// Sets the WAL auto-compaction threshold (`0` disables; default
    /// [`DEFAULT_COMPACT_EVERY`]). Fails on in-memory stores.
    pub fn set_auto_compaction(&self, every: u64) -> Result<(), StoreError> {
        match self.durable.lock().expect("durable log poisoned").as_mut() {
            Some(log) => {
                log.set_compact_every(every);
                Ok(())
            }
            None => Err(StoreError::NotDurable),
        }
    }

    fn validate(base: &DiGraph, u: NodeId, v: NodeId) -> Result<(), StoreError> {
        let n = base.num_nodes() as u64;
        for node in [u, v] {
            if u64::from(node) >= n {
                return Err(StoreError::NodeOutOfRange {
                    node: u64::from(node),
                    num_nodes: n,
                });
            }
        }
        if u == v {
            return Err(StoreError::SelfLoop(u64::from(u)));
        }
        Ok(())
    }

    /// Stages the insertion of `u → v` for the next commit.
    ///
    /// Returns how the buffer changed: inserting an edge the published graph
    /// already has (or that is already staged) is a [`Staged::NoOp`], and
    /// inserting an edge staged for deletion cancels the deletion. Self-loops
    /// and out-of-range endpoints are rejected.
    pub fn stage_insert(&self, u: NodeId, v: NodeId) -> Result<Staged, StoreError> {
        let mut pending = self.pending.lock().expect("pending delta poisoned");
        // One published-lock acquisition per staged edge: validation and
        // dedup share the same base snapshot (stable while `pending` is
        // held, since commits serialize on it).
        let base = self.graph();
        Self::validate(&base, u, v)?;
        Ok(pending.stage_insert(&base, u, v))
    }

    /// Stages the deletion of `u → v` for the next commit. Deleting an edge
    /// the published graph does not have is a [`Staged::NoOp`]; deleting a
    /// staged insertion cancels it.
    pub fn stage_delete(&self, u: NodeId, v: NodeId) -> Result<Staged, StoreError> {
        let mut pending = self.pending.lock().expect("pending delta poisoned");
        let base = self.graph();
        Self::validate(&base, u, v)?;
        Ok(pending.stage_delete(&base, u, v))
    }

    /// Number of staged `(insertions, deletions)`.
    pub fn pending_counts(&self) -> (usize, usize) {
        let pending = self.pending.lock().expect("pending delta poisoned");
        (pending.num_insertions(), pending.num_deletions())
    }

    /// Discards every staged update without publishing anything.
    pub fn rollback(&self) -> (usize, usize) {
        let mut pending = self.pending.lock().expect("pending delta poisoned");
        let counts = (pending.num_insertions(), pending.num_deletions());
        pending.clear();
        counts
    }

    /// Number of commits that published a new epoch.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Materializes the staged delta into a new CSR graph, bumps the epoch,
    /// and atomically swaps the published snapshot.
    ///
    /// Readers never see a torn state: the `(graph, epoch)` pair changes
    /// under one write lock held only for the pointer swap, and snapshots
    /// captured before the swap stay fully usable. An empty commit publishes
    /// nothing and reports the current epoch with zero counts.
    ///
    /// On a durable store the delta is appended to the WAL and fsynced
    /// *before* the epoch is published — the WAL write is the durability
    /// point, and a failed write returns an error with the staged delta
    /// intact (nothing published, safe to retry). In-memory stores cannot
    /// fail. After a successful durable commit the WAL may additionally be
    /// folded into a fresh snapshot (auto-compaction); a compaction failure
    /// is *not* surfaced here because the commit itself is already durable —
    /// the WAL still holds every delta and the next commit or
    /// [`GraphStore::save`] retries the fold.
    pub fn commit(&self) -> Result<CommitReport, StoreError> {
        let mut pending = self.pending.lock().expect("pending delta poisoned");
        if pending.is_empty() {
            let snapshot = self.snapshot();
            return Ok(CommitReport {
                epoch: snapshot.epoch,
                edges_inserted: 0,
                edges_deleted: 0,
                num_nodes: snapshot.graph.num_nodes(),
                num_edges: snapshot.graph.num_edges(),
                build_time: Duration::ZERO,
                timings: CommitTimings::default(),
            });
        }
        let start = Instant::now();
        let mut timings = CommitTimings::default();
        // Copy (not drain) so a failed WAL append leaves the delta staged.
        let (insertions, deletions) = {
            let stage_start = Instant::now();
            let lists = pending.lists();
            timings.staging = stage_start.elapsed();
            exactsim_obs::trace::record("stage", stage_start, timings.staging);
            lists
        };
        // The pending lock serializes commits, so the published graph cannot
        // change between this read and the swap below.
        let base = self.snapshot();
        let merge_start = Instant::now();
        let next = Arc::new(base.graph.apply_delta(&insertions, &deletions));
        timings.csr_merge = merge_start.elapsed();
        exactsim_obs::trace::record("csr_merge", merge_start, timings.csr_merge);
        let next_epoch = base.epoch + 1;

        let mut durable = self.durable.lock().expect("durable log poisoned");
        if let Some(log) = durable.as_mut() {
            let append_start = Instant::now();
            let (wal_append, fsync) = log.append(&WalRecord {
                epoch: next_epoch,
                insertions: insertions.clone(),
                deletions: deletions.clone(),
            })?;
            timings.wal_append = wal_append;
            timings.fsync = fsync;
            exactsim_obs::trace::record("wal_append", append_start, wal_append);
            exactsim_obs::trace::record("fsync", append_start + wal_append, fsync);
        }
        pending.clear();

        let publish_start = Instant::now();
        let epoch = {
            let mut published = self.published.write().expect("published snapshot poisoned");
            published.epoch = next_epoch;
            published.graph = Arc::clone(&next);
            self.epoch.store(published.epoch, Ordering::Release);
            published.epoch
        };
        timings.publish = publish_start.elapsed();
        exactsim_obs::trace::record("publish", publish_start, timings.publish);
        self.commits.fetch_add(1, Ordering::Relaxed);

        if let Some(log) = durable.as_mut() {
            if log.should_compact() {
                // Best-effort: the commit is already durable in the WAL; a
                // failed fold leaves the WAL long and is retried later.
                let _ = log.compact(&next, epoch);
            }
        }

        Ok(CommitReport {
            epoch,
            edges_inserted: insertions.len(),
            edges_deleted: deletions.len(),
            num_nodes: next.num_nodes(),
            num_edges: next.num_edges(),
            build_time: start.elapsed(),
            timings,
        })
    }

    /// Folds the WAL into a fresh snapshot file of the current epoch and
    /// deletes superseded snapshot files. Returns the epoch the snapshot
    /// holds. Fails with [`StoreError::NotDurable`] on in-memory stores.
    pub fn save(&self) -> Result<u64, StoreError> {
        // Taking `pending` first serializes with commit, so the snapshot we
        // write is exactly the published graph and no WAL append interleaves
        // with the truncate.
        let _pending = self.pending.lock().expect("pending delta poisoned");
        let mut durable = self.durable.lock().expect("durable log poisoned");
        let log = durable.as_mut().ok_or(StoreError::NotDurable)?;
        let snapshot = self.snapshot();
        log.compact(&snapshot.graph, snapshot.epoch)?;
        Ok(snapshot.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> GraphStore {
        // 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 0
        GraphStore::new(Arc::new(DiGraph::from_edges(
            4,
            &[(0, 2), (1, 2), (2, 3), (3, 0)],
        )))
    }

    #[test]
    fn commit_publishes_a_new_epoch_with_the_delta_applied() {
        let store = store();
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.stage_insert(0, 1).unwrap(), Staged::Pending);
        assert_eq!(store.stage_delete(2, 3).unwrap(), Staged::Pending);
        assert_eq!(store.pending_counts(), (1, 1));

        let report = store.commit().unwrap();
        assert!(report.advanced());
        assert_eq!(report.epoch, 1);
        assert_eq!(report.edges_inserted, 1);
        assert_eq!(report.edges_deleted, 1);
        assert_eq!(report.num_edges, 4);
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.commits(), 1);
        assert_eq!(store.pending_counts(), (0, 0));

        let graph = store.graph();
        assert!(graph.has_edge(0, 1));
        assert!(!graph.has_edge(2, 3));
        assert!(graph.validate());
    }

    #[test]
    fn empty_commit_is_a_published_noop() {
        let store = store();
        let report = store.commit().unwrap();
        assert!(!report.advanced());
        assert_eq!(report.epoch, 0);
        assert_eq!(report.num_edges, 4);
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.commits(), 0);
    }

    #[test]
    fn staging_validates_ids_and_self_loops() {
        let store = store();
        assert_eq!(
            store.stage_insert(0, 9),
            Err(StoreError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            })
        );
        assert!(store
            .stage_delete(7, 0)
            .unwrap_err()
            .to_string()
            .contains('7'));
        assert_eq!(store.stage_insert(2, 2), Err(StoreError::SelfLoop(2)));
        assert_eq!(store.pending_counts(), (0, 0));
    }

    #[test]
    fn old_snapshots_survive_commits_unchanged() {
        let store = store();
        let before = store.snapshot();
        store.stage_insert(1, 3).unwrap();
        store.commit().unwrap();
        let after = store.snapshot();
        assert_eq!(before.epoch, 0);
        assert_eq!(after.epoch, 1);
        assert!(
            !before.graph.has_edge(1, 3),
            "old snapshot must be immutable"
        );
        assert!(after.graph.has_edge(1, 3));
    }

    #[test]
    fn rollback_discards_staged_updates() {
        let store = store();
        store.stage_insert(0, 1).unwrap();
        store.stage_delete(3, 0).unwrap();
        assert_eq!(store.rollback(), (1, 1));
        let report = store.commit().unwrap();
        assert!(!report.advanced());
        assert_eq!(store.epoch(), 0);
    }

    #[test]
    fn staging_dedups_against_published_graph_and_buffer() {
        let store = store();
        assert_eq!(store.stage_insert(0, 2).unwrap(), Staged::NoOp); // exists
        assert_eq!(store.stage_delete(0, 1).unwrap(), Staged::NoOp); // absent
        assert_eq!(store.stage_insert(0, 1).unwrap(), Staged::Pending);
        assert_eq!(store.stage_delete(0, 1).unwrap(), Staged::Cancelled);
        assert_eq!(store.pending_counts(), (0, 0));
    }

    #[test]
    fn successive_commits_compose() {
        let store = store();
        store.stage_insert(0, 1).unwrap();
        assert_eq!(store.commit().unwrap().epoch, 1);
        // Now 0 -> 1 is part of the published base: re-inserting is a no-op,
        // deleting stages a real deletion.
        assert_eq!(store.stage_insert(0, 1).unwrap(), Staged::NoOp);
        assert_eq!(store.stage_delete(0, 1).unwrap(), Staged::Pending);
        assert_eq!(store.commit().unwrap().epoch, 2);
        assert!(!store.graph().has_edge(0, 1));
        assert_eq!(store.graph().num_edges(), 4);
    }

    #[test]
    fn in_memory_store_reports_no_durability() {
        let store = store();
        assert!(store.durability().is_none());
        assert_eq!(store.save(), Err(StoreError::NotDurable));
        assert_eq!(store.set_auto_compaction(4), Err(StoreError::NotDurable));
    }

    #[test]
    fn concurrent_readers_never_observe_torn_snapshots() {
        let store = Arc::new(store());
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let snap = store.snapshot();
                        assert!(snap.epoch >= last_epoch, "epoch must be monotonic");
                        last_epoch = snap.epoch;
                        // Epoch k has exactly 4 + k edges in this workload —
                        // a torn (graph, epoch) pair would break this.
                        assert_eq!(
                            snap.graph.num_edges(),
                            4 + snap.epoch as usize,
                            "snapshot tore: epoch and graph disagree"
                        );
                        assert!(snap.graph.validate());
                    }
                })
            })
            .collect();
        // 8 commits, each adding exactly one edge.
        for (u, v) in [
            (0, 1),
            (0, 3),
            (1, 0),
            (1, 3),
            (2, 0),
            (2, 1),
            (3, 1),
            (3, 2),
        ] {
            store.stage_insert(u, v).unwrap();
            let report = store.commit().unwrap();
            assert!(report.advanced());
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.epoch(), 8);
        assert_eq!(store.graph().num_edges(), 12);
    }
}
