//! The epoch-based dynamic graph store.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use std::path::PathBuf;

use exactsim_graph::{DiGraph, NodeId};

use crate::buffer::{BufferPool, PoolStats};
use crate::delta::{DeltaBuffer, Staged};
use crate::error::StoreError;
use crate::handle::GraphHandle;
use crate::paged::PagedGraph;
use crate::pages::{write_page_file, DEFAULT_PAGE_BYTES};
use crate::persist::{DurabilityInfo, DurableLog, WalRecord};

/// Default WAL auto-compaction threshold: once this many delta records
/// accumulate, a commit folds them into a fresh snapshot file.
pub const DEFAULT_COMPACT_EVERY: u64 = 64;

/// How [`GraphStore::open_or_create`] obtained its store.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Opened {
    /// The directory held a store; it was recovered.
    Recovered,
    /// The directory held no store; a fresh one was initialized.
    Created,
}

/// A consistent `(graph, epoch)` pair published by a [`GraphStore`].
///
/// The two fields are captured under one lock, so the epoch always describes
/// exactly this graph. Holding a snapshot keeps its backend alive (the
/// handle is `Arc`-backed); later commits publish new snapshots without
/// disturbing it.
#[derive(Clone, Debug)]
pub struct GraphSnapshot {
    /// The immutable graph of this epoch: in-memory or paged (see
    /// [`GraphHandle`]).
    pub graph: GraphHandle,
    /// The monotonic epoch the graph was published under (the initial graph
    /// is epoch 0).
    pub epoch: u64,
}

/// Per-stage wall-clock breakdown of one effective commit.
///
/// Mirrors the commit pipeline in order: stage the delta, merge it into a
/// new CSR graph, append to the WAL, fsync, publish the new epoch. The two
/// WAL fields are zero for in-memory stores (there is no log); every field
/// is zero for an empty commit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitTimings {
    /// Copying the staged insert/delete lists out of the delta buffer.
    pub staging: Duration,
    /// Materializing the new CSR graph ([`DiGraph::apply_delta`]).
    pub csr_merge: Duration,
    /// Writing the delta record into the WAL (buffered write).
    pub wal_append: Duration,
    /// `fsync` of the WAL — the durability point.
    pub fsync: Duration,
    /// Swapping the published `(graph, epoch)` pair under the write lock.
    pub publish: Duration,
}

/// What one [`GraphStore::commit`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitReport {
    /// The epoch now published. An empty commit reports the unchanged
    /// current epoch.
    pub epoch: u64,
    /// Edge insertions materialized by this commit.
    pub edges_inserted: usize,
    /// Edge deletions materialized by this commit.
    pub edges_deleted: usize,
    /// Nodes appended to the id space by this commit.
    pub nodes_added: usize,
    /// Node count of the published graph.
    pub num_nodes: usize,
    /// Edge count of the published graph.
    pub num_edges: usize,
    /// Wall-clock time spent materializing and swapping the new CSR graph
    /// (zero for an empty commit).
    pub build_time: Duration,
    /// Per-stage breakdown of `build_time` (all zero for an empty commit).
    pub timings: CommitTimings,
}

impl CommitReport {
    /// `true` iff this commit published a new epoch.
    pub fn advanced(&self) -> bool {
        self.edges_inserted + self.edges_deleted + self.nodes_added > 0
    }
}

struct Published {
    graph: GraphHandle,
    epoch: u64,
}

/// Configuration of the paged serving mode (see [`GraphStore::with_paging`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PagedOptions {
    /// Buffer-pool capacity in pages. Must be at least `threads + 1` for the
    /// pin contract; the default suits the bench graphs.
    pub pool_pages: usize,
    /// Regular-page target capacity in bytes.
    pub page_bytes: usize,
}

impl Default for PagedOptions {
    fn default() -> Self {
        PagedOptions {
            pool_pages: 256,
            page_bytes: DEFAULT_PAGE_BYTES,
        }
    }
}

/// Live state of the paged mode: where epoch page files go and the pool
/// shared across epochs (so hit/miss/eviction counters stay monotonic).
struct PagedMode {
    dir: PathBuf,
    page_bytes: usize,
    pool: Arc<BufferPool>,
}

/// The page file imaging `epoch` inside the paged-mode directory.
fn page_file_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("epoch-{epoch}.pages"))
}

/// A dynamic graph store with epoch-based snapshot publication and optional
/// on-disk durability.
///
/// The store owns the current published [`DiGraph`] behind an `Arc` plus a
/// buffer of staged edge updates. Readers call [`GraphStore::snapshot`] (or
/// [`GraphStore::graph`] / [`GraphStore::epoch`]) and never block on writers
/// beyond a pointer-swap critical section; in-flight work simply finishes on
/// the snapshot it captured. Writers stage updates with
/// [`GraphStore::stage_insert`] / [`GraphStore::stage_delete`] — validated
/// against the node-id space and deduplicated against both the base graph
/// and each other — and [`GraphStore::commit`] materializes a new CSR graph
/// via the `O(m + Δ)` merge path ([`DiGraph::apply_delta`]), bumps the
/// monotonic epoch, and atomically swaps the published snapshot.
///
/// ## Durability
///
/// A store created with [`GraphStore::create`] (or recovered with
/// [`GraphStore::open`]) additionally persists its state under a data
/// directory: a full snapshot file per compaction point plus an append-only
/// delta WAL (see [`crate::persist`] for the formats and the recovery
/// protocol). Each commit appends its delta to the WAL and fsyncs *before*
/// publishing the new epoch, so `open` after a crash restarts the store into
/// exactly the last fully-committed epoch. [`GraphStore::save`] folds the
/// WAL into a fresh snapshot; commits also do this automatically once the
/// WAL exceeds a threshold ([`GraphStore::set_auto_compaction`]).
///
/// ## Node-space growth
///
/// The node-id space grows through [`GraphStore::stage_add_nodes`]: new
/// nodes are appended at the top of the id space on commit (recorded in the
/// WAL before the edge delta), and staged insertions may already reference
/// them.
///
/// ## Paged mode
///
/// [`GraphStore::with_paging`] converts the published handle to the paged
/// backend: each epoch is imaged as a page file served through a shared
/// pinning [`BufferPool`], so queries stream adjacency instead of holding
/// the whole CSR in RAM. The page file is a rebuildable cache — durability
/// still rests solely on the snapshot + WAL.
pub struct GraphStore {
    published: RwLock<Published>,
    /// Mirrors `published.epoch` for lock-free epoch polls on hot paths.
    epoch: AtomicU64,
    /// Staging is serialized; commit holds this lock end-to-end so the base
    /// graph cannot change under a validation or a CSR rebuild.
    pending: Mutex<DeltaBuffer>,
    /// `Some` for durable stores. Locked *after* `pending` everywhere (commit
    /// and save both hold `pending` first), so the order is consistent.
    durable: Mutex<Option<DurableLog>>,
    commits: AtomicU64,
    /// `Some` once [`GraphStore::with_paging`] ran; immutable afterwards.
    paged: Option<PagedMode>,
}

impl std::fmt::Debug for GraphStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snapshot = self.snapshot();
        f.debug_struct("GraphStore")
            .field("epoch", &snapshot.epoch)
            .field("num_nodes", &snapshot.graph.num_nodes())
            .field("num_edges", &snapshot.graph.num_edges())
            .field("durable", &self.durability())
            .finish_non_exhaustive()
    }
}

impl GraphStore {
    /// Creates an in-memory store publishing `graph` as epoch 0. Nothing is
    /// persisted; use [`GraphStore::create`] for a durable store.
    pub fn new(graph: Arc<DiGraph>) -> Self {
        Self::assemble(graph, 0, None)
    }

    /// Creates a durable store publishing `graph` as epoch 0 and initializes
    /// `dir` with its first snapshot file and an empty WAL. Fails with
    /// [`StoreError::StoreExists`] if `dir` already holds a store — recover
    /// those with [`GraphStore::open`] instead.
    pub fn create<P: AsRef<Path>>(dir: P, graph: Arc<DiGraph>) -> Result<Self, StoreError> {
        let log = DurableLog::create(dir.as_ref(), &graph, 0)?;
        Ok(Self::assemble(graph, 0, Some(log)))
    }

    /// Recovers a durable store from its data directory: loads the newest
    /// valid snapshot, replays the WAL to the last fully-committed epoch
    /// (truncating a torn tail), and publishes the result. The recovered
    /// store answers queries bit-identically to the pre-restart process at
    /// the same epoch.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        let (graph, epoch, log) = DurableLog::open(dir.as_ref())?;
        Ok(Self::assemble(Arc::new(graph), epoch, Some(log)))
    }

    /// [`GraphStore::open`] if `dir` holds a store, otherwise
    /// [`GraphStore::create`] with the graph produced by `init` (which is
    /// only invoked in the create case — recovery never pays for a graph
    /// build, and an `init` failure surfaces as its returned error). The
    /// boot path for servers with a `--data-dir`; the [`Opened`]
    /// discriminant says which branch ran, for logging.
    pub fn open_or_create<P, F>(dir: P, init: F) -> Result<(Self, Opened), StoreError>
    where
        P: AsRef<Path>,
        F: FnOnce() -> Result<Arc<DiGraph>, StoreError>,
    {
        match Self::open(dir.as_ref()) {
            Ok(store) => Ok((store, Opened::Recovered)),
            Err(e) if e.means_no_store_yet(dir.as_ref()) => {
                Ok((Self::create(dir, init()?)?, Opened::Created))
            }
            Err(e) => Err(e),
        }
    }

    fn assemble(graph: Arc<DiGraph>, epoch: u64, log: Option<DurableLog>) -> Self {
        GraphStore {
            published: RwLock::new(Published {
                graph: GraphHandle::Mem(graph),
                epoch,
            }),
            epoch: AtomicU64::new(epoch),
            pending: Mutex::new(DeltaBuffer::new()),
            durable: Mutex::new(log),
            commits: AtomicU64::new(0),
            paged: None,
        }
    }

    /// Converts the store to the paged serving mode: images the current
    /// epoch as a page file under `dir`, opens it over a fresh
    /// [`BufferPool`] of `opts.pool_pages` frames, and republishes the
    /// snapshot as [`GraphHandle::Paged`]. Every later commit images its new
    /// epoch the same way (removing the superseded file) through the *same*
    /// pool, so pool counters are monotonic across epochs.
    ///
    /// Call at construction time, before the store is shared:
    ///
    /// ```ignore
    /// let store = GraphStore::open(&data_dir)?
    ///     .with_paging(data_dir.join("pages"), PagedOptions::default())?;
    /// ```
    pub fn with_paging<P: AsRef<Path>>(
        mut self,
        dir: P,
        opts: PagedOptions,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, "create_dir", e))?;
        let snapshot = self.snapshot();
        let graph = snapshot.graph.materialize()?;
        let path = page_file_path(&dir, snapshot.epoch);
        write_page_file(&path, &graph, snapshot.epoch, opts.page_bytes)?;
        let pool = Arc::new(BufferPool::new(opts.pool_pages));
        let paged_graph = PagedGraph::open(&path, Arc::clone(&pool))?;
        {
            let mut published = self.published.write().expect("published snapshot poisoned");
            published.graph = GraphHandle::Paged(Arc::new(paged_graph));
        }
        // Stale page files from previous runs (other epochs) are dead weight.
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                if entry.path() != path
                    && entry
                        .file_name()
                        .to_str()
                        .is_some_and(|n| n.starts_with("epoch-") && n.ends_with(".pages"))
                {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }
        self.paged = Some(PagedMode {
            dir,
            page_bytes: opts.page_bytes,
            pool,
        });
        Ok(self)
    }

    /// `true` iff the store serves through the paged backend.
    pub fn is_paged(&self) -> bool {
        self.paged.is_some()
    }

    /// Buffer-pool statistics (`None` unless paged).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.paged.as_ref().map(|mode| mode.pool.stats())
    }

    /// The current consistent `(graph, epoch)` pair.
    pub fn snapshot(&self) -> GraphSnapshot {
        let published = self.published.read().expect("published snapshot poisoned");
        GraphSnapshot {
            graph: published.graph.clone(),
            epoch: published.epoch,
        }
    }

    /// The currently published graph handle.
    pub fn graph(&self) -> GraphHandle {
        self.snapshot().graph
    }

    /// The currently published epoch (lock-free; pairs with the snapshot the
    /// same or a later epoch publishes).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Node count of the currently published snapshot (grows when `addnode`
    /// commits land).
    pub fn num_nodes(&self) -> usize {
        self.snapshot().graph.num_nodes()
    }

    /// Durable-state description (`None` for in-memory stores): data
    /// directory, WAL record count, epoch of the newest snapshot file.
    pub fn durability(&self) -> Option<DurabilityInfo> {
        self.durable
            .lock()
            .expect("durable log poisoned")
            .as_ref()
            .map(|log| log.info())
    }

    /// Sets the WAL auto-compaction threshold (`0` disables; default
    /// [`DEFAULT_COMPACT_EVERY`]). Fails on in-memory stores.
    pub fn set_auto_compaction(&self, every: u64) -> Result<(), StoreError> {
        match self.durable.lock().expect("durable log poisoned").as_mut() {
            Some(log) => {
                log.set_compact_every(every);
                Ok(())
            }
            None => Err(StoreError::NotDurable),
        }
    }

    /// Validates an edge's endpoints against a node space of `n` ids (the
    /// published count plus any staged-but-uncommitted `addnode` growth).
    fn validate(n: u64, u: NodeId, v: NodeId) -> Result<(), StoreError> {
        for node in [u, v] {
            if u64::from(node) >= n {
                return Err(StoreError::NodeOutOfRange {
                    node: u64::from(node),
                    num_nodes: n,
                });
            }
        }
        if u == v {
            return Err(StoreError::SelfLoop(u64::from(u)));
        }
        Ok(())
    }

    /// Stages the insertion of `u → v` for the next commit.
    ///
    /// Returns how the buffer changed: inserting an edge the published graph
    /// already has (or that is already staged) is a [`Staged::NoOp`], and
    /// inserting an edge staged for deletion cancels the deletion. Self-loops
    /// and out-of-range endpoints are rejected.
    pub fn stage_insert(&self, u: NodeId, v: NodeId) -> Result<Staged, StoreError> {
        let mut pending = self.pending.lock().expect("pending delta poisoned");
        // One published-lock acquisition per staged edge: validation and
        // dedup share the same base snapshot (stable while `pending` is
        // held, since commits serialize on it).
        let base = self.graph();
        Self::validate(base.num_nodes() as u64 + pending.added_nodes(), u, v)?;
        Ok(pending.stage_insert(&base, u, v))
    }

    /// Stages the growth of the node-id space by `count` nodes for the next
    /// commit and returns the total pending growth. The new ids are
    /// `n .. n + total` (appended at the top of the id space, born
    /// isolated); staged insertions may reference them immediately. Fails
    /// only if the growth would overflow the `u32` node-id space.
    pub fn stage_add_nodes(&self, count: u64) -> Result<u64, StoreError> {
        let mut pending = self.pending.lock().expect("pending delta poisoned");
        let base_n = self.graph().num_nodes() as u64;
        let total = base_n
            .checked_add(pending.added_nodes())
            .and_then(|t| t.checked_add(count));
        if total.is_none_or(|t| t > u64::from(u32::MAX)) {
            return Err(StoreError::NodeSpaceExhausted {
                requested: count,
                num_nodes: base_n,
            });
        }
        Ok(pending.stage_add_nodes(count))
    }

    /// Total nodes staged for addition by the next commit.
    pub fn pending_nodes(&self) -> u64 {
        self.pending
            .lock()
            .expect("pending delta poisoned")
            .added_nodes()
    }

    /// Stages the deletion of `u → v` for the next commit. Deleting an edge
    /// the published graph does not have is a [`Staged::NoOp`]; deleting a
    /// staged insertion cancels it.
    pub fn stage_delete(&self, u: NodeId, v: NodeId) -> Result<Staged, StoreError> {
        let mut pending = self.pending.lock().expect("pending delta poisoned");
        let base = self.graph();
        Self::validate(base.num_nodes() as u64 + pending.added_nodes(), u, v)?;
        Ok(pending.stage_delete(&base, u, v))
    }

    /// Number of staged `(insertions, deletions)`.
    pub fn pending_counts(&self) -> (usize, usize) {
        let pending = self.pending.lock().expect("pending delta poisoned");
        (pending.num_insertions(), pending.num_deletions())
    }

    /// Discards every staged update without publishing anything.
    pub fn rollback(&self) -> (usize, usize) {
        let mut pending = self.pending.lock().expect("pending delta poisoned");
        let counts = (pending.num_insertions(), pending.num_deletions());
        pending.clear();
        counts
    }

    /// Number of commits that published a new epoch.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Materializes the staged delta into a new CSR graph, bumps the epoch,
    /// and atomically swaps the published snapshot.
    ///
    /// Readers never see a torn state: the `(graph, epoch)` pair changes
    /// under one write lock held only for the pointer swap, and snapshots
    /// captured before the swap stay fully usable. An empty commit publishes
    /// nothing and reports the current epoch with zero counts.
    ///
    /// On a durable store the delta is appended to the WAL and fsynced
    /// *before* the epoch is published — the WAL write is the durability
    /// point, and a failed write returns an error with the staged delta
    /// intact (nothing published, safe to retry). In-memory stores cannot
    /// fail. After a successful durable commit the WAL may additionally be
    /// folded into a fresh snapshot (auto-compaction); a compaction failure
    /// is *not* surfaced here because the commit itself is already durable —
    /// the WAL still holds every delta and the next commit or
    /// [`GraphStore::save`] retries the fold.
    pub fn commit(&self) -> Result<CommitReport, StoreError> {
        let mut pending = self.pending.lock().expect("pending delta poisoned");
        if pending.is_empty() {
            let snapshot = self.snapshot();
            return Ok(CommitReport {
                epoch: snapshot.epoch,
                edges_inserted: 0,
                edges_deleted: 0,
                nodes_added: 0,
                num_nodes: snapshot.graph.num_nodes(),
                num_edges: snapshot.graph.num_edges(),
                build_time: Duration::ZERO,
                timings: CommitTimings::default(),
            });
        }
        let start = Instant::now();
        let mut timings = CommitTimings::default();
        // Copy (not drain) so a failed WAL append leaves the delta staged.
        let (insertions, deletions) = {
            let stage_start = Instant::now();
            let lists = pending.lists();
            timings.staging = stage_start.elapsed();
            exactsim_obs::trace::record("stage", stage_start, timings.staging);
            lists
        };
        let added_nodes = pending.added_nodes();
        // The pending lock serializes commits, so the published graph cannot
        // change between this read and the swap below.
        let base = self.snapshot();
        let merge_start = Instant::now();
        // The paged backend materializes transiently; `Mem` hands back its
        // existing `Arc` (no copy).
        let base_graph = base.graph.materialize()?;
        let merge_base = if added_nodes > 0 {
            // Growth first, so staged insertions may reference the new ids.
            Arc::new(base_graph.grow(added_nodes as usize))
        } else {
            base_graph
        };
        let next = Arc::new(merge_base.apply_delta(&insertions, &deletions));
        timings.csr_merge = merge_start.elapsed();
        exactsim_obs::trace::record("csr_merge", merge_start, timings.csr_merge);
        let next_epoch = base.epoch + 1;

        // Image the new epoch as a page file *before* the WAL append: a
        // failed image leaves at worst an orphan file (overwritten on
        // retry), whereas failing after the append would strand a durable
        // epoch that was never published.
        let next_handle = match &self.paged {
            None => GraphHandle::Mem(Arc::clone(&next)),
            Some(mode) => {
                let path = page_file_path(&mode.dir, next_epoch);
                write_page_file(&path, &next, next_epoch, mode.page_bytes)?;
                let paged = PagedGraph::open(&path, Arc::clone(&mode.pool))?;
                GraphHandle::Paged(Arc::new(paged))
            }
        };

        let mut durable = self.durable.lock().expect("durable log poisoned");
        if let Some(log) = durable.as_mut() {
            let append_start = Instant::now();
            let (wal_append, fsync) = log.append(&WalRecord {
                epoch: next_epoch,
                added_nodes,
                insertions: insertions.clone(),
                deletions: deletions.clone(),
            })?;
            timings.wal_append = wal_append;
            timings.fsync = fsync;
            exactsim_obs::trace::record("wal_append", append_start, wal_append);
            exactsim_obs::trace::record("fsync", append_start + wal_append, fsync);
        }
        pending.clear();

        let publish_start = Instant::now();
        let epoch = {
            let mut published = self.published.write().expect("published snapshot poisoned");
            published.epoch = next_epoch;
            published.graph = next_handle;
            self.epoch.store(published.epoch, Ordering::Release);
            published.epoch
        };
        timings.publish = publish_start.elapsed();
        exactsim_obs::trace::record("publish", publish_start, timings.publish);
        self.commits.fetch_add(1, Ordering::Relaxed);

        // The superseded epoch's page file is dead once no snapshot holds
        // it; removal is best-effort (an open handle keeps the inode alive
        // on Unix, and a leftover file is only disk, not correctness).
        if let Some(mode) = &self.paged {
            let _ = std::fs::remove_file(page_file_path(&mode.dir, base.epoch));
        }

        if let Some(log) = durable.as_mut() {
            if log.should_compact() {
                // Best-effort: the commit is already durable in the WAL; a
                // failed fold leaves the WAL long and is retried later.
                let _ = log.compact(&next, epoch);
            }
        }

        Ok(CommitReport {
            epoch,
            edges_inserted: insertions.len(),
            edges_deleted: deletions.len(),
            nodes_added: added_nodes as usize,
            num_nodes: next.num_nodes(),
            num_edges: next.num_edges(),
            build_time: start.elapsed(),
            timings,
        })
    }

    /// Folds the WAL into a fresh snapshot file of the current epoch and
    /// deletes superseded snapshot files. Returns the epoch the snapshot
    /// holds. Fails with [`StoreError::NotDurable`] on in-memory stores.
    pub fn save(&self) -> Result<u64, StoreError> {
        // Taking `pending` first serializes with commit, so the snapshot we
        // write is exactly the published graph and no WAL append interleaves
        // with the truncate.
        let _pending = self.pending.lock().expect("pending delta poisoned");
        let mut durable = self.durable.lock().expect("durable log poisoned");
        let log = durable.as_mut().ok_or(StoreError::NotDurable)?;
        let snapshot = self.snapshot();
        let graph = snapshot.graph.materialize()?;
        log.compact(&graph, snapshot.epoch)?;
        Ok(snapshot.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> GraphStore {
        // 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 0
        GraphStore::new(Arc::new(DiGraph::from_edges(
            4,
            &[(0, 2), (1, 2), (2, 3), (3, 0)],
        )))
    }

    #[test]
    fn commit_publishes_a_new_epoch_with_the_delta_applied() {
        let store = store();
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.stage_insert(0, 1).unwrap(), Staged::Pending);
        assert_eq!(store.stage_delete(2, 3).unwrap(), Staged::Pending);
        assert_eq!(store.pending_counts(), (1, 1));

        let report = store.commit().unwrap();
        assert!(report.advanced());
        assert_eq!(report.epoch, 1);
        assert_eq!(report.edges_inserted, 1);
        assert_eq!(report.edges_deleted, 1);
        assert_eq!(report.num_edges, 4);
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.commits(), 1);
        assert_eq!(store.pending_counts(), (0, 0));

        let graph = store.graph();
        assert!(graph.has_edge(0, 1));
        assert!(!graph.has_edge(2, 3));
        assert!(graph.validate());
    }

    #[test]
    fn empty_commit_is_a_published_noop() {
        let store = store();
        let report = store.commit().unwrap();
        assert!(!report.advanced());
        assert_eq!(report.epoch, 0);
        assert_eq!(report.num_edges, 4);
        assert_eq!(store.epoch(), 0);
        assert_eq!(store.commits(), 0);
    }

    #[test]
    fn staging_validates_ids_and_self_loops() {
        let store = store();
        assert_eq!(
            store.stage_insert(0, 9),
            Err(StoreError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            })
        );
        assert!(store
            .stage_delete(7, 0)
            .unwrap_err()
            .to_string()
            .contains('7'));
        assert_eq!(store.stage_insert(2, 2), Err(StoreError::SelfLoop(2)));
        assert_eq!(store.pending_counts(), (0, 0));
    }

    #[test]
    fn old_snapshots_survive_commits_unchanged() {
        let store = store();
        let before = store.snapshot();
        store.stage_insert(1, 3).unwrap();
        store.commit().unwrap();
        let after = store.snapshot();
        assert_eq!(before.epoch, 0);
        assert_eq!(after.epoch, 1);
        assert!(
            !before.graph.has_edge(1, 3),
            "old snapshot must be immutable"
        );
        assert!(after.graph.has_edge(1, 3));
    }

    #[test]
    fn rollback_discards_staged_updates() {
        let store = store();
        store.stage_insert(0, 1).unwrap();
        store.stage_delete(3, 0).unwrap();
        assert_eq!(store.rollback(), (1, 1));
        let report = store.commit().unwrap();
        assert!(!report.advanced());
        assert_eq!(store.epoch(), 0);
    }

    #[test]
    fn staging_dedups_against_published_graph_and_buffer() {
        let store = store();
        assert_eq!(store.stage_insert(0, 2).unwrap(), Staged::NoOp); // exists
        assert_eq!(store.stage_delete(0, 1).unwrap(), Staged::NoOp); // absent
        assert_eq!(store.stage_insert(0, 1).unwrap(), Staged::Pending);
        assert_eq!(store.stage_delete(0, 1).unwrap(), Staged::Cancelled);
        assert_eq!(store.pending_counts(), (0, 0));
    }

    #[test]
    fn successive_commits_compose() {
        let store = store();
        store.stage_insert(0, 1).unwrap();
        assert_eq!(store.commit().unwrap().epoch, 1);
        // Now 0 -> 1 is part of the published base: re-inserting is a no-op,
        // deleting stages a real deletion.
        assert_eq!(store.stage_insert(0, 1).unwrap(), Staged::NoOp);
        assert_eq!(store.stage_delete(0, 1).unwrap(), Staged::Pending);
        assert_eq!(store.commit().unwrap().epoch, 2);
        assert!(!store.graph().has_edge(0, 1));
        assert_eq!(store.graph().num_edges(), 4);
    }

    #[test]
    fn in_memory_store_reports_no_durability() {
        let store = store();
        assert!(store.durability().is_none());
        assert_eq!(store.save(), Err(StoreError::NotDurable));
        assert_eq!(store.set_auto_compaction(4), Err(StoreError::NotDurable));
    }

    #[test]
    fn concurrent_readers_never_observe_torn_snapshots() {
        let store = Arc::new(store());
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let snap = store.snapshot();
                        assert!(snap.epoch >= last_epoch, "epoch must be monotonic");
                        last_epoch = snap.epoch;
                        // Epoch k has exactly 4 + k edges in this workload —
                        // a torn (graph, epoch) pair would break this.
                        assert_eq!(
                            snap.graph.num_edges(),
                            4 + snap.epoch as usize,
                            "snapshot tore: epoch and graph disagree"
                        );
                        assert!(snap.graph.validate());
                    }
                })
            })
            .collect();
        // 8 commits, each adding exactly one edge.
        for (u, v) in [
            (0, 1),
            (0, 3),
            (1, 0),
            (1, 3),
            (2, 0),
            (2, 1),
            (3, 1),
            (3, 2),
        ] {
            store.stage_insert(u, v).unwrap();
            let report = store.commit().unwrap();
            assert!(report.advanced());
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.epoch(), 8);
        assert_eq!(store.graph().num_edges(), 12);
    }

    #[test]
    fn addnode_grows_the_id_space_and_accepts_edges_to_new_ids() {
        let store = store();
        assert_eq!(store.num_nodes(), 4);
        // Edges to not-yet-added ids are still rejected.
        assert_eq!(
            store.stage_insert(0, 4),
            Err(StoreError::NodeOutOfRange {
                node: 4,
                num_nodes: 4
            })
        );
        assert_eq!(store.stage_add_nodes(2).unwrap(), 2);
        assert_eq!(store.pending_nodes(), 2);
        // Staged growth widens the id space visible to staging immediately.
        store.stage_insert(0, 4).unwrap();
        store.stage_insert(5, 1).unwrap();
        assert_eq!(
            store.stage_insert(0, 6),
            Err(StoreError::NodeOutOfRange {
                node: 6,
                num_nodes: 6
            })
        );
        let report = store.commit().unwrap();
        assert!(report.advanced());
        assert_eq!(report.nodes_added, 2);
        assert_eq!(report.num_nodes, 6);
        assert_eq!(store.num_nodes(), 6);
        let graph = store.graph();
        assert!(graph.has_edge(0, 4));
        assert!(graph.has_edge(5, 1));
        assert!(graph.validate());
        assert_eq!(store.pending_nodes(), 0);
    }

    #[test]
    fn addnode_alone_advances_the_epoch() {
        let store = store();
        store.stage_add_nodes(3).unwrap();
        let report = store.commit().unwrap();
        assert!(report.advanced());
        assert_eq!(report.epoch, 1);
        assert_eq!(report.nodes_added, 3);
        assert_eq!(report.edges_inserted, 0);
        assert_eq!(store.num_nodes(), 7);
        assert_eq!(store.graph().num_edges(), 4);
    }

    #[test]
    fn addnode_rejects_u32_overflow() {
        let store = store();
        assert!(matches!(
            store.stage_add_nodes(u64::from(u32::MAX)),
            Err(StoreError::NodeSpaceExhausted { .. })
        ));
        // The failed staging left nothing pending.
        assert_eq!(store.pending_nodes(), 0);
    }

    #[test]
    fn rollback_discards_staged_node_growth() {
        let store = store();
        store.stage_add_nodes(5).unwrap();
        store.rollback();
        assert_eq!(store.pending_nodes(), 0);
        assert!(!store.commit().unwrap().advanced());
        assert_eq!(store.num_nodes(), 4);
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("exactsim-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn paged_store_serves_the_same_graph_and_counts_pool_traffic() {
        let dir = temp_dir("paged");
        let store = store()
            .with_paging(
                dir.join("pages"),
                PagedOptions {
                    pool_pages: 2,
                    page_bytes: 8,
                },
            )
            .unwrap();
        assert!(store.is_paged());
        let handle = store.graph();
        assert!(handle.as_paged().is_some());
        assert_eq!(handle.num_nodes(), 4);
        assert!(handle.has_edge(0, 2));
        assert!(handle.validate());
        assert!(store.pool_stats().unwrap().misses > 0);

        // Commits re-image through the same pool; staged growth works too.
        store.stage_add_nodes(1).unwrap();
        store.stage_insert(4, 0).unwrap();
        let report = store.commit().unwrap();
        assert_eq!(report.nodes_added, 1);
        let after = store.graph();
        assert!(after.as_paged().is_some());
        assert!(after.has_edge(4, 0));
        assert!(after.validate());
        // The superseded epoch's page file is gone; the new epoch's exists.
        assert!(!dir.join("pages/epoch-0.pages").exists());
        assert!(dir.join("pages/epoch-1.pages").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_paged_store_recovers_addnode_commits() {
        let dir = temp_dir("durable-paged");
        {
            let store = GraphStore::create(
                &dir,
                Arc::new(DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)])),
            )
            .unwrap()
            .with_paging(dir.join("pages"), PagedOptions::default())
            .unwrap();
            store.stage_add_nodes(2).unwrap();
            store.stage_insert(0, 5).unwrap();
            store.commit().unwrap();
        }
        let store = GraphStore::open(&dir)
            .unwrap()
            .with_paging(dir.join("pages"), PagedOptions::default())
            .unwrap();
        assert_eq!(store.epoch(), 1);
        assert_eq!(store.num_nodes(), 6);
        assert!(store.graph().has_edge(0, 5));
        assert!(store.graph().validate());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
