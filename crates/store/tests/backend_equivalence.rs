//! Backend-equivalence property: every solver produces **bit-identical**
//! score vectors whether the graph is served from the in-memory CSR or
//! streamed from a page file through the buffer pool.
//!
//! This is the paged backend's core correctness contract. Pages store
//! exactly the same sorted neighbor lists as the CSR, and every solver is
//! deterministic given the adjacency, so `f64::to_bits` equality must hold —
//! not approximate equality. The sweep crosses all five solvers with three
//! graph families, and runs the paged side through a pool far smaller than
//! the page count, so eviction churn happens *mid-query* and is asserted.

use std::sync::Arc;

use exactsim::exactsim::ExactSimConfig;
use exactsim::linearization::LinearizationConfig;
use exactsim::mc::MonteCarloConfig;
use exactsim::parsim::ParSimConfig;
use exactsim::prsim::PrSimConfig;

/// Cheap solver parameters: equivalence is about *determinism across
/// backends*, not accuracy, so paper-fidelity sample counts (the defaults,
/// e.g. ExactSim's ε = 1e-7) would only burn CPU without strengthening the
/// test. Every config keeps its default fixed seed.
fn exactsim_config() -> ExactSimConfig {
    ExactSimConfig {
        epsilon: 1e-2,
        walk_budget: Some(20_000),
        ..ExactSimConfig::default()
    }
}

fn parsim_config() -> ParSimConfig {
    ParSimConfig {
        iterations: 10,
        ..ParSimConfig::default()
    }
}

fn mc_config() -> MonteCarloConfig {
    MonteCarloConfig {
        walks_per_node: 8,
        walk_length: 8,
        ..MonteCarloConfig::default()
    }
}

fn linearization_config() -> LinearizationConfig {
    LinearizationConfig {
        epsilon: 0.25,
        walk_budget: Some(20_000),
        ..LinearizationConfig::default()
    }
}

fn prsim_config() -> PrSimConfig {
    PrSimConfig {
        epsilon: 0.25,
        walk_budget: Some(20_000),
        ..PrSimConfig::default()
    }
}
use exactsim::suite::{
    ExactSimAlgorithm, LinearizationAlgorithm, MonteCarloAlgorithm, ParSimAlgorithm,
    PrSimAlgorithm, SingleSourceAlgorithm,
};
use exactsim_graph::generators::{barabasi_albert, cycle, erdos_renyi_directed};
use exactsim_graph::{DiGraph, NodeId};
use exactsim_store::{BufferPool, GraphHandle, PagedGraph};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "exactsim-equiv-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The three graph families of the sweep: scale-free, uniform-random, and a
/// degenerate ring (every in-degree exactly 1 — an edge case for the
/// `(in-degree product)` weighting every solver shares).
fn families() -> Vec<(&'static str, DiGraph)> {
    vec![
        (
            "barabasi-albert",
            barabasi_albert(160, 3, true, 17).unwrap(),
        ),
        ("erdos-renyi", erdos_renyi_directed(150, 0.03, 29).unwrap()),
        ("cycle", cycle(48)),
    ]
}

/// Runs one solver on both backends and requires bit-identical scores.
fn assert_identical(
    name: &str,
    family: &str,
    mem: &dyn SingleSourceAlgorithm,
    paged: &dyn SingleSourceAlgorithm,
    sources: &[NodeId],
) {
    for &source in sources {
        let a = mem.query(source).unwrap().scores;
        let b = paged.query(source).unwrap().scores;
        assert_eq!(a.len(), b.len(), "{name}/{family}: length mismatch");
        for (v, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}/{family}: score for node {v} (source {source}) differs \
                 between backends: {x} vs {y}"
            );
        }
    }
}

#[test]
fn all_solvers_are_bit_identical_across_backends() {
    for (family, graph) in families() {
        let dir = TempDir::new(family);
        let path = dir.0.join("epoch-0.pages");
        let graph = Arc::new(graph);
        // Tiny pages (8 neighbor ids) + a pool of 4 frames: far below the
        // page count even for the sparse ring, so the clock replacer must
        // evict continuously while queries run.
        PagedGraph::build(&path, &graph, 0, 32).unwrap();
        let pool = Arc::new(BufferPool::new(4));
        let paged = PagedGraph::open(&path, Arc::clone(&pool)).unwrap();
        assert!(
            paged.num_pages() > 8,
            "{family}: want many pages, got {}",
            paged.num_pages()
        );
        let mem = GraphHandle::Mem(Arc::clone(&graph));
        let paged = GraphHandle::Paged(Arc::new(paged));
        let sources: Vec<NodeId> = vec![1, (graph.num_nodes() / 2) as NodeId];

        assert_identical(
            "ExactSim",
            family,
            &ExactSimAlgorithm::new(mem.clone(), exactsim_config()).unwrap(),
            &ExactSimAlgorithm::new(paged.clone(), exactsim_config()).unwrap(),
            &sources,
        );
        assert_identical(
            "ParSim",
            family,
            &ParSimAlgorithm::new(mem.clone(), parsim_config()).unwrap(),
            &ParSimAlgorithm::new(paged.clone(), parsim_config()).unwrap(),
            &sources,
        );
        assert_identical(
            "MC",
            family,
            &MonteCarloAlgorithm::build(mem.clone(), mc_config()).unwrap(),
            &MonteCarloAlgorithm::build(paged.clone(), mc_config()).unwrap(),
            &sources,
        );
        assert_identical(
            "Linearization",
            family,
            &LinearizationAlgorithm::build(mem.clone(), linearization_config()).unwrap(),
            &LinearizationAlgorithm::build(paged.clone(), linearization_config()).unwrap(),
            &sources,
        );
        assert_identical(
            "PrSim",
            family,
            &PrSimAlgorithm::build(mem.clone(), prsim_config()).unwrap(),
            &PrSimAlgorithm::build(paged.clone(), prsim_config()).unwrap(),
            &sources,
        );

        let stats = pool.stats();
        assert!(
            stats.evictions > 0,
            "{family}: pool (4 frames, {} pages) must have evicted mid-query",
            paged.as_paged().unwrap().num_pages()
        );
        assert!(stats.hits > 0 && stats.misses > 0);
    }
}
