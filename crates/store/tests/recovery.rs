//! Crash-recovery integration tests for the durable [`GraphStore`]:
//! round-trip fidelity, WAL replay, compaction, and — crucially — corrupt
//! persistence inputs (truncated WAL tails, bit-flipped checksums, wrong
//! version headers), each of which must fail with a typed [`StoreError`],
//! never a panic or a silent partial load.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use exactsim_graph::DiGraph;
use exactsim_store::{GraphStore, Opened, StoreError, DEFAULT_COMPACT_EVERY};

/// A unique scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "exactsim-recovery-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base_graph() -> Arc<DiGraph> {
    // 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 0, plus two spare nodes for growth.
    Arc::new(DiGraph::from_edges(
        6,
        &[(0, 2), (1, 2), (2, 3), (3, 0), (4, 5)],
    ))
}

/// Commits `rounds` single-edge epochs so the WAL has real content.
fn commit_rounds(store: &GraphStore, rounds: usize) {
    let edges = [(0, 1), (1, 3), (2, 0), (3, 2), (4, 0), (5, 1), (0, 4)];
    for &(u, v) in edges.iter().take(rounds) {
        store.stage_insert(u, v).unwrap();
        assert!(store.commit().unwrap().advanced());
    }
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn single_snapshot_path(dir: &Path) -> PathBuf {
    let mut snaps: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "snap"))
        .collect();
    assert_eq!(snaps.len(), 1, "expected exactly one snapshot file");
    snaps.pop().unwrap()
}

#[test]
fn round_trip_recovers_epoch_and_graph_bit_identically() {
    let dir = TempDir::new("round-trip");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    commit_rounds(&store, 3);
    // A deletion epoch too, so replay exercises both directions.
    store.stage_delete(2, 3).unwrap();
    store.commit().unwrap();
    let (graph_before, epoch_before) = {
        let snap = store.snapshot();
        (snap.graph.materialize().unwrap(), snap.epoch)
    };
    drop(store); // crash: nothing is flushed at drop — the WAL already has it

    let recovered = GraphStore::open(dir.path()).unwrap();
    assert_eq!(recovered.epoch(), epoch_before);
    let graph_after = recovered.graph().materialize().unwrap();
    // Bit-identical CSR arrays, not just the same edge set.
    assert_eq!(graph_after.out_csr(), graph_before.out_csr());
    assert_eq!(graph_after.in_csr(), graph_before.in_csr());
    assert!(graph_after.validate());
    assert!(!graph_after.has_edge(2, 3));

    // The recovered store keeps committing durably.
    recovered.stage_insert(2, 5).unwrap();
    assert_eq!(recovered.commit().unwrap().epoch, epoch_before + 1);
    let info = recovered.durability().unwrap();
    assert_eq!(info.last_snapshot_epoch, 0, "no compaction ran yet");
    assert_eq!(info.wal_records, 5);
}

#[test]
fn create_refuses_an_occupied_directory_and_open_needs_a_snapshot() {
    let dir = TempDir::new("occupied");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    drop(store);
    assert!(matches!(
        GraphStore::create(dir.path(), base_graph()),
        Err(StoreError::StoreExists { .. })
    ));

    let empty = TempDir::new("empty");
    std::fs::create_dir_all(empty.path()).unwrap();
    assert!(matches!(
        GraphStore::open(empty.path()),
        Err(StoreError::NoSnapshot { .. })
    ));
}

#[test]
fn open_or_create_boots_fresh_then_recovers() {
    let dir = TempDir::new("open-or-create");
    let (store, how) = GraphStore::open_or_create(dir.path(), || Ok(base_graph())).unwrap();
    assert_eq!(how, Opened::Created);
    commit_rounds(&store, 2);
    drop(store);
    // Second boot must recover, not re-initialize from the closure.
    let (recovered, how) =
        GraphStore::open_or_create(dir.path(), || panic!("must not rebuild")).unwrap();
    assert_eq!(how, Opened::Recovered);
    assert_eq!(recovered.epoch(), 2);

    // A failing init on a fresh dir surfaces the callback's own error.
    let fresh = TempDir::new("init-fails");
    assert!(matches!(
        GraphStore::open_or_create(fresh.path(), || Err(StoreError::InitFailed(
            "no dataset".into()
        ))),
        Err(StoreError::InitFailed(_))
    ));
}

#[test]
fn second_live_process_cannot_open_a_locked_store() {
    let dir = TempDir::new("locked");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    commit_rounds(&store, 1);
    // While the first handle lives, a concurrent open must refuse — two
    // writers appending to one WAL would interleave epochs.
    assert!(matches!(
        GraphStore::open(dir.path()),
        Err(StoreError::Locked { .. })
    ));
    drop(store);
    // The advisory lock dies with the handle (even on a crash): reopening
    // afterwards works.
    assert_eq!(GraphStore::open(dir.path()).unwrap().epoch(), 1);
}

#[test]
fn wal_records_with_out_of_range_endpoints_are_rejected_on_replay() {
    // A WAL paired with the wrong (smaller) store's snapshot must not reach
    // apply_delta with out-of-range node ids. Build a 20-node store's WAL,
    // then splice it next to a 6-node store's snapshot.
    let big_dir = TempDir::new("range-big");
    let big = GraphStore::create(
        big_dir.path(),
        Arc::new(DiGraph::from_edges(20, &[(0, 1), (18, 19)])),
    )
    .unwrap();
    big.stage_insert(17, 3).unwrap();
    big.commit().unwrap();
    drop(big);

    let small_dir = TempDir::new("range-small");
    let small = GraphStore::create(small_dir.path(), base_graph()).unwrap();
    drop(small);
    std::fs::copy(wal_path(big_dir.path()), wal_path(small_dir.path())).unwrap();

    match GraphStore::open(small_dir.path()) {
        Err(StoreError::WalCorrupt { detail, .. }) => {
            assert!(detail.contains("out of range"), "{detail}");
        }
        other => panic!("expected WalCorrupt, got {other:?}"),
    }
}

#[test]
fn save_compacts_the_wal_into_a_fresh_snapshot() {
    let dir = TempDir::new("save");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    commit_rounds(&store, 4);
    assert_eq!(store.durability().unwrap().wal_records, 4);

    assert_eq!(store.save().unwrap(), 4);
    let info = store.durability().unwrap();
    assert_eq!(info.wal_records, 0);
    assert_eq!(info.last_snapshot_epoch, 4);
    // Old snapshot files are gone; exactly one remains.
    let snap = single_snapshot_path(dir.path());
    assert!(snap.ends_with("snapshot-4.snap"));

    // Recovery from the compacted state alone.
    let graph_before = store.graph().materialize().unwrap();
    drop(store);
    let recovered = GraphStore::open(dir.path()).unwrap();
    assert_eq!(recovered.epoch(), 4);
    assert_eq!(
        recovered.graph().materialize().unwrap().out_csr(),
        graph_before.out_csr()
    );
}

#[test]
fn auto_compaction_triggers_at_the_threshold() {
    let dir = TempDir::new("auto-compact");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    assert_eq!(
        store.durability().unwrap().wal_records,
        0,
        "fresh WAL is empty (threshold default {DEFAULT_COMPACT_EVERY})"
    );
    store.set_auto_compaction(3).unwrap();
    commit_rounds(&store, 2);
    assert_eq!(store.durability().unwrap().wal_records, 2);
    commit_rounds_from(&store, &[(0, 4)]);
    let info = store.durability().unwrap();
    assert_eq!(info.wal_records, 0, "third commit folded the WAL");
    assert_eq!(info.last_snapshot_epoch, 3);
    drop(store);
    assert_eq!(GraphStore::open(dir.path()).unwrap().epoch(), 3);
}

fn commit_rounds_from(store: &GraphStore, edges: &[(u32, u32)]) {
    for &(u, v) in edges {
        store.stage_insert(u, v).unwrap();
        store.commit().unwrap();
    }
}

#[test]
fn torn_wal_tail_is_truncated_and_recovery_lands_on_the_last_full_commit() {
    let dir = TempDir::new("torn-tail");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    commit_rounds(&store, 3);
    drop(store);

    // Simulate a crash mid-append: chop bytes off the last record.
    let wal = wal_path(dir.path());
    let len = std::fs::metadata(&wal).unwrap().len();
    let file = OpenOptions::new().write(true).open(&wal).unwrap();
    file.set_len(len - 5).unwrap();
    drop(file);

    let recovered = GraphStore::open(dir.path()).unwrap();
    assert_eq!(
        recovered.epoch(),
        2,
        "the torn third commit is truncated away"
    );
    assert_eq!(recovered.durability().unwrap().wal_records, 2);
    // The file itself was truncated to the valid prefix, so appending new
    // commits keeps the log well-formed end-to-end.
    recovered.stage_insert(5, 0).unwrap();
    assert_eq!(recovered.commit().unwrap().epoch, 3);
    drop(recovered);
    assert_eq!(GraphStore::open(dir.path()).unwrap().epoch(), 3);
}

#[test]
fn bit_flipped_wal_record_is_a_typed_corruption_error() {
    let dir = TempDir::new("wal-flip");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    commit_rounds(&store, 2);
    drop(store);

    // Flip one payload byte of the FIRST record (offset 8 header + 8 frame):
    // the record is fully present, so this is corruption, not a torn tail.
    let wal = wal_path(dir.path());
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&wal)
        .unwrap();
    file.seek(SeekFrom::Start(20)).unwrap();
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte).unwrap();
    file.seek(SeekFrom::Start(20)).unwrap();
    file.write_all(&[byte[0] ^ 0x40]).unwrap();
    drop(file);

    match GraphStore::open(dir.path()) {
        Err(StoreError::WalCorrupt { offset, detail, .. }) => {
            assert_eq!(offset, 8, "first record sits right after the header");
            assert!(detail.contains("checksum"), "{detail}");
        }
        other => panic!("expected WalCorrupt, got {other:?}"),
    }
}

#[test]
fn corrupted_length_field_before_durable_records_is_corruption_not_a_torn_tail() {
    // A bit-flipped payload_len on a NON-final record must not be treated as
    // a torn tail: truncating there would silently destroy the durably
    // committed records that follow it.
    let dir = TempDir::new("len-flip");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    commit_rounds(&store, 3);
    drop(store);

    // Inflate the FIRST record's length field (offset 8 = right after the
    // file header) so its declared payload overruns the file, while records
    // 2 and 3 physically remain intact after it.
    let wal = wal_path(dir.path());
    let mut file = OpenOptions::new().write(true).open(&wal).unwrap();
    file.seek(SeekFrom::Start(8)).unwrap();
    file.write_all(&0x4000_0000u32.to_le_bytes()).unwrap();
    drop(file);

    match GraphStore::open(dir.path()) {
        Err(StoreError::WalCorrupt { offset, detail, .. }) => {
            assert_eq!(offset, 8);
            assert!(detail.contains("valid records follow"), "{detail}");
        }
        other => panic!("expected WalCorrupt, got {other:?}"),
    }
    // The WAL was NOT truncated: the committed records are still there for
    // offline repair.
    assert!(std::fs::metadata(&wal).unwrap().len() > 8);
}

#[test]
fn corrupt_newest_snapshot_never_silently_rolls_back_to_an_older_one() {
    // Compaction leaves (transiently) multiple snapshots. If the newest one
    // rots and the WAL cannot re-reach its epoch, recovery must refuse with
    // the newest snapshot's error — not quietly publish the older epoch.
    let dir = TempDir::new("no-silent-rollback");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    commit_rounds(&store, 2); // snapshot-0 + WAL records for epochs 1, 2
    let graph = store.graph().materialize().unwrap();
    // Simulate a compaction that wrote its snapshot but crashed before
    // truncating the WAL or deleting snapshot-0.
    exactsim_store::persist::write_snapshot(dir.path(), &graph, 2).unwrap();
    drop(store);

    // Rot the newest snapshot.
    let snap2 = dir.path().join("snapshot-2.snap");
    let mut bytes = std::fs::read(&snap2).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&snap2, &bytes).unwrap();

    // The WAL still covers epochs 1..=2, so falling back to snapshot-0 fully
    // re-reaches the newest proven epoch: recovery succeeds, nothing lost.
    let recovered = GraphStore::open(dir.path()).unwrap();
    assert_eq!(recovered.epoch(), 2);
    assert_eq!(
        recovered.graph().materialize().unwrap().out_csr(),
        graph.out_csr()
    );
    drop(recovered);

    // Now empty the WAL (as a completed compaction would have) while the
    // corrupt snapshot-2 and stale snapshot-0 remain: the fallback can no
    // longer re-reach epoch 2, so recovery must refuse with the newest
    // snapshot's own error instead of silently publishing epoch 0.
    let store = GraphStore::create(dir.path().join("scratch"), base_graph()).unwrap();
    drop(store); // borrow a fresh, empty WAL file (header only)
    std::fs::copy(dir.path().join("scratch/wal.log"), wal_path(dir.path())).unwrap();
    std::fs::remove_dir_all(dir.path().join("scratch")).unwrap();

    match GraphStore::open(dir.path()) {
        Err(StoreError::SnapshotCorrupt { path, .. }) => {
            assert!(path.ends_with("snapshot-2.snap"), "{}", path.display());
        }
        other => panic!("expected SnapshotCorrupt for the newest, got {other:?}"),
    }
}

#[test]
fn bit_flipped_snapshot_checksum_is_a_typed_corruption_error() {
    let dir = TempDir::new("snap-flip");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    drop(store);

    let snap = single_snapshot_path(dir.path());
    // Flip a byte in the middle of the graph payload.
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&snap, &bytes).unwrap();

    match GraphStore::open(dir.path()) {
        Err(StoreError::SnapshotCorrupt { detail, .. }) => {
            assert!(detail.contains("checksum"), "{detail}");
        }
        other => panic!("expected SnapshotCorrupt, got {other:?}"),
    }
}

#[test]
fn wrong_snapshot_version_header_is_a_typed_error() {
    let dir = TempDir::new("snap-version");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    drop(store);

    let snap = single_snapshot_path(dir.path());
    let mut bytes = std::fs::read(&snap).unwrap();
    // Bump the version field (bytes 4..8) to a future version and re-seal
    // the checksum so ONLY the version mismatch can trip.
    bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
    let body_end = bytes.len() - 4;
    let crc = exactsim_store::persist::crc32(&bytes[..body_end]);
    bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
    std::fs::write(&snap, &bytes).unwrap();

    match GraphStore::open(dir.path()) {
        Err(StoreError::UnsupportedVersion {
            found, supported, ..
        }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, 2);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn wrong_wal_version_header_is_a_typed_error() {
    let dir = TempDir::new("wal-version");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    commit_rounds(&store, 1);
    drop(store);

    let wal = wal_path(dir.path());
    let mut file = OpenOptions::new().write(true).open(&wal).unwrap();
    file.seek(SeekFrom::Start(4)).unwrap();
    file.write_all(&7u32.to_le_bytes()).unwrap();
    drop(file);

    assert!(matches!(
        GraphStore::open(dir.path()),
        Err(StoreError::UnsupportedVersion { found: 7, .. })
    ));
}

#[test]
fn truncated_snapshot_file_is_a_typed_error() {
    let dir = TempDir::new("snap-truncated");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    drop(store);

    let snap = single_snapshot_path(dir.path());
    let len = std::fs::metadata(&snap).unwrap().len();
    let file = OpenOptions::new().write(true).open(&snap).unwrap();
    file.set_len(len - 9).unwrap();
    drop(file);

    assert!(matches!(
        GraphStore::open(dir.path()),
        Err(StoreError::SnapshotCorrupt { .. })
    ));
}

#[test]
fn stale_wal_records_below_the_snapshot_epoch_replay_as_noops() {
    // Simulate the crash window between compaction's snapshot write and its
    // WAL truncate: snapshot at epoch 2 coexists with WAL records 1..=2.
    let dir = TempDir::new("stale-records");
    let store = GraphStore::create(dir.path(), base_graph()).unwrap();
    commit_rounds(&store, 2);
    let graph = store.graph().materialize().unwrap();
    exactsim_store::persist::write_snapshot(dir.path(), &graph, 2).unwrap();
    // Remove the epoch-0 snapshot so recovery must use the epoch-2 one.
    std::fs::remove_file(dir.path().join("snapshot-0.snap")).unwrap();
    drop(store);

    let recovered = GraphStore::open(dir.path()).unwrap();
    assert_eq!(recovered.epoch(), 2);
    assert_eq!(
        recovered.graph().materialize().unwrap().out_csr(),
        graph.out_csr()
    );
    let info = recovered.durability().unwrap();
    assert_eq!(info.last_snapshot_epoch, 2);
}
