//! Fault-injection coverage for the durable store: a failed WAL append must
//! leave the staged delta intact and nothing published; a torn append must
//! recover to the previous epoch on reopen; an exhausted buffer pool under
//! concurrent pinners must fail typed instead of deadlocking.

use std::sync::{Arc, Barrier, Mutex};

use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::DiGraph;
use exactsim_obs::fault;
use exactsim_store::pages::{write_page_file, FileManager};
use exactsim_store::{BufferPool, GraphStore, StoreError};

// The fault registry is process-global and integration tests run in
// threads, so every test that installs (or must observe a clean) plan
// serialises on this lock.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_guard() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("exactsim-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_graph() -> Arc<DiGraph> {
    Arc::new(DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)]))
}

#[test]
fn wal_append_failure_keeps_delta_staged_and_store_retryable() {
    let _g = fault_guard();
    let dir = scratch_dir("wal-error");
    let store = GraphStore::create(&dir, seed_graph()).unwrap();
    store.stage_insert(0, 1).unwrap();

    fault::configure("wal.fsync=nth:1").unwrap();
    let err = store.commit().expect_err("injected fsync failure");
    assert!(
        err.to_string().contains("injected fault at wal.fsync"),
        "unexpected error: {err}"
    );
    // Nothing published, delta still staged: the commit is safe to retry.
    assert_eq!(store.epoch(), 0);
    assert_eq!(store.pending_counts(), (1, 0));
    assert!(!store.graph().has_edge(0, 1));

    // The nth:1 rule fired once; the retry must land — and because the
    // failed append rolled the WAL back to a frame boundary, the retried
    // frame is the only epoch-1 record on disk.
    let report = store.commit().unwrap();
    assert_eq!(report.epoch, 1);
    assert_eq!(store.pending_counts(), (0, 0));
    assert!(store.graph().has_edge(0, 1));

    drop(store);
    let recovered = GraphStore::open(&dir).unwrap();
    assert_eq!(recovered.epoch(), 1);
    assert!(recovered.graph().has_edge(0, 1));

    fault::reset();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_append_recovers_to_previous_epoch() {
    let _g = fault_guard();
    let dir = scratch_dir("wal-torn");
    let store = GraphStore::create(&dir, seed_graph()).unwrap();
    store.stage_insert(0, 1).unwrap();
    store.commit().unwrap(); // epoch 1, clean

    // Power loss mid-append: half the epoch-2 frame reaches disk.
    fault::configure("wal.fsync=nth:1:torn").unwrap();
    store.stage_insert(1, 3).unwrap();
    let err = store.commit().expect_err("injected torn append");
    assert!(err.to_string().contains("injected fault at wal.fsync"));
    fault::reset();

    // Crash and recover: the torn tail must be truncated, landing exactly
    // on epoch 1 — never a partial epoch 2.
    drop(store);
    let recovered = GraphStore::open(&dir).unwrap();
    assert_eq!(recovered.epoch(), 1);
    assert!(recovered.graph().has_edge(0, 1));
    assert!(!recovered.graph().has_edge(1, 3));

    // And the truncated WAL accepts appends again.
    recovered.stage_insert(1, 3).unwrap();
    assert_eq!(recovered.commit().unwrap().epoch, 2);
    drop(recovered);
    let recovered = GraphStore::open(&dir).unwrap();
    assert_eq!(recovered.epoch(), 2);
    assert!(recovered.graph().has_edge(1, 3));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_write_failure_leaves_store_serving_and_retryable() {
    let _g = fault_guard();
    let dir = scratch_dir("snapshot");
    let store = GraphStore::create(&dir, seed_graph()).unwrap();
    store.stage_insert(0, 1).unwrap();
    store.commit().unwrap();

    fault::configure("snapshot.write=nth:1").unwrap();
    let err = store.save().expect_err("injected snapshot failure");
    assert!(err.to_string().contains("injected fault at snapshot.write"));
    fault::reset();

    // The failed fold lost nothing: the WAL still holds the commit, the
    // store still serves, and the retried save lands.
    assert_eq!(store.epoch(), 1);
    assert!(store.graph().has_edge(0, 1));
    assert_eq!(store.save().unwrap(), 1);
    drop(store);
    assert_eq!(GraphStore::open(&dir).unwrap().epoch(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pool_exhausted_under_concurrent_pinners_is_typed_not_a_deadlock() {
    // Takes the fault lock only to guarantee no other test's plan (e.g. a
    // page.read rule) is installed while pages are being fetched.
    let _g = fault_guard();
    fault::reset();
    let dir = scratch_dir("pool");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("epoch-0.pages");
    let graph = barabasi_albert(200, 3, true, 5).unwrap();
    write_page_file(&path, &graph, 0, 64).unwrap();
    let fm = FileManager::open(&path).unwrap();
    assert!(fm.num_pages() >= 3, "need at least 3 pages for this test");

    let pool = BufferPool::new(2);
    let pinned = Barrier::new(3);
    let release = Barrier::new(3);
    std::thread::scope(|s| {
        for page in 0..2u32 {
            let (pool, fm, pinned, release) = (&pool, &fm, &pinned, &release);
            s.spawn(move || {
                let guard = pool.fetch(fm, page).unwrap();
                pinned.wait(); // both frames are now pinned
                release.wait(); // hold the pin until the main assert ran
                drop(guard);
            });
        }
        pinned.wait();
        // Every frame is pinned by another thread: the fetch must give up
        // with the typed error after its bounded clock sweep — blocking
        // here would deadlock the test.
        assert!(matches!(
            pool.fetch(&fm, 2),
            Err(StoreError::PoolExhausted { capacity: 2 })
        ));
        release.wait();
    });

    // Pins released: the same fetch now succeeds by evicting.
    assert!(pool.fetch(&fm, 2).is_ok());
    assert_eq!(pool.stats().pinned, 0);
    let _ = std::fs::remove_dir_all(&dir);
}
