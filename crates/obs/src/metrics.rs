//! Labeled metrics registry with Prometheus text-format exposition.
//!
//! Three primitives, all lock-free on the hot path:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`.
//! * [`Histogram`] — the power-of-two bucketed latency histogram that the
//!   serving layer has used since its first stats snapshot, relocated here so
//!   every crate can record into it. Buckets are fixed at compile time, so
//!   recording is two relaxed atomic adds and no allocation.
//! * function-backed series — a counter or gauge whose value is read from a
//!   closure at scrape time, used to expose counters that already live
//!   elsewhere (service stats fields, kernel statics) without double
//!   bookkeeping.
//!
//! A [`Registry`] groups series into *families* (one metric name, one help
//! string, one type, many label sets) and renders the whole collection in the
//! Prometheus text exposition format. The rendered payload always ends with a
//! `# EOF` line, which the line-oriented TCP protocol uses as the framing
//! sentinel for its one multi-line reply (`metrics`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of histogram buckets: bucket 0 plus one per power of two up to
/// 2^39 µs (~6.4 days), after which observations saturate.
pub const BUCKETS: usize = 40;

/// Values at or above this saturate into the overflow bucket.
///
/// 2^39 µs is a bit over six days — any observation that large is a bug
/// somewhere else, but it must not corrupt the histogram.
pub const SATURATION_BOUND_US: u64 = 1 << (BUCKETS - 1);

/// Highest bucket rendered with an explicit `le` bound in the Prometheus
/// exposition; everything above folds into `+Inf`. 2^30 µs (~18 minutes)
/// keeps scrapes compact without losing any realistic latency resolution.
const RENDER_BUCKETS: usize = 31;

/// A monotonically increasing counter.
///
/// Plain newtype over `AtomicU64` with relaxed ordering — counters are
/// statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero. `const` so counters can live in statics.
    #[must_use]
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Lock-free histogram with power-of-two bucket boundaries.
///
/// Bucket 0 counts observations of 0 µs (sub-microsecond); bucket `i` for
/// `i >= 1` counts observations in `[2^(i-1), 2^i)` µs. Observations at or
/// beyond [`SATURATION_BOUND_US`] land in a dedicated overflow bucket so they
/// can never index out of range. A running sum (saturating) is kept for the
/// Prometheus `_sum` series.
///
/// The unit is microseconds for latency series, but [`Histogram::record_value`]
/// accepts any non-negative integer, so the same primitive also backs
/// unit-less distributions such as requests-per-connection.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration, bucketed by whole microseconds.
    pub fn record(&self, latency: Duration) {
        self.record_value(u64::try_from(latency.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one raw value (microseconds for latency series; any
    /// non-negative integer otherwise).
    pub fn record_value(&self, value: u64) {
        if value >= SATURATION_BOUND_US {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        } else {
            // 0 -> bucket 0; otherwise 1 + floor(log2(value)).
            let bucket = (64 - value.leading_zeros()) as usize;
            self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        }
        // Saturating: one pathological observation must not wrap the sum.
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(value);
            match self
                .sum
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
    }

    /// Upper bound (exclusive) of bucket `i`, in the histogram's unit.
    #[must_use]
    pub const fn bucket_upper_bound(i: usize) -> u64 {
        1 << i
    }

    /// A point-in-time copy of the per-bucket counts (overflow excluded).
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        counts
    }

    /// Number of observations that saturated past the top bucket.
    #[must_use]
    pub fn saturated(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Total number of observations, including saturated ones.
    #[must_use]
    pub fn count(&self) -> u64 {
        let mut total = self.overflow.load(Ordering::Relaxed);
        for bucket in &self.buckets {
            total += bucket.load(Ordering::Relaxed);
        }
        total
    }

    /// Sum of all observed values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The value below which a fraction `q` of observations fall, reported
    /// as the upper bound of the containing bucket (conservative).
    ///
    /// `q` is clamped into `[0, 1]` (so `q = 0` reports the smallest
    /// occupied bucket). Returns `None` for an empty histogram. If the
    /// quantile lands among saturated observations, the saturation bound
    /// itself is returned — a *lower* bound, flagged by a nonzero
    /// [`Histogram::saturated`] count rather than silently miscounted.
    #[must_use]
    pub fn quantile_value(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // Rank of the target observation, 1-based, rounding up.
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::bucket_upper_bound(i));
            }
        }
        Some(SATURATION_BOUND_US)
    }

    /// [`Histogram::quantile_value`] interpreted as microseconds.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        self.quantile_value(q).map(Duration::from_micros)
    }

    /// Folds another histogram's observations into this one.
    ///
    /// Used to merge per-shard or per-snapshot histograms into a registry
    /// total; bucket counts, overflow, and sums all add independently, so a
    /// merge is exactly equivalent to having recorded into one histogram.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.overflow
            .fetch_add(other.overflow.load(Ordering::Relaxed), Ordering::Relaxed);
        let other_sum = other.sum.load(Ordering::Relaxed);
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(other_sum);
            match self
                .sum
                .compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
    }
}

/// What backs one rendered series.
enum Series {
    Counter(Arc<Counter>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> f64 + Send + Sync>),
    Histogram(Arc<Histogram>),
}

/// One (label set, series) row inside a family.
struct Row {
    labels: Vec<(String, String)>,
    series: Series,
}

/// One metric family: a name, help text, a type, and its label rows.
struct Family {
    name: String,
    help: String,
    type_name: &'static str,
    rows: Vec<Row>,
}

/// A collection of metric families rendered together as one Prometheus
/// text-format payload.
///
/// Registration happens once at startup (series are pre-registered eagerly so
/// every series appears in a scrape from the first request, value zero);
/// recording happens through the returned `Arc`s without touching the
/// registry lock. Registering the same name again with a different label set
/// adds a row to the existing family; help text and type come from the first
/// registration.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(
        &self,
        name: &str,
        help: &str,
        type_name: &'static str,
        labels: &[(&str, &str)],
        series: Series,
    ) {
        let row = Row {
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
            series,
        };
        let mut families = self.families.lock().expect("metrics registry poisoned");
        if let Some(family) = families.iter_mut().find(|f| f.name == name) {
            debug_assert_eq!(
                family.type_name, type_name,
                "metric {name} registered with two types"
            );
            family.rows.push(row);
        } else {
            families.push(Family {
                name: name.to_string(),
                help: help.to_string(),
                type_name,
                rows: vec![row],
            });
        }
    }

    /// Registers a counter series and returns its handle.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let counter = Arc::new(Counter::new());
        self.push(
            name,
            help,
            "counter",
            labels,
            Series::Counter(counter.clone()),
        );
        counter
    }

    /// Registers a counter series whose value is read from `f` at scrape
    /// time — for counters that already live elsewhere.
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(
            name,
            help,
            "counter",
            labels,
            Series::CounterFn(Box::new(f)),
        );
    }

    /// Registers a gauge series whose value is read from `f` at scrape time.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        self.push(name, help, "gauge", labels, Series::GaugeFn(Box::new(f)));
    }

    /// Registers a fresh histogram series and returns its handle.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let histogram = Arc::new(Histogram::new());
        self.register_histogram(name, help, labels, histogram.clone());
        histogram
    }

    /// Registers an existing histogram (e.g. one owned by a stats struct) as
    /// a series, so one set of buckets backs both the snapshot and the scrape.
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        histogram: Arc<Histogram>,
    ) {
        self.push(
            name,
            help,
            "histogram",
            labels,
            Series::Histogram(histogram),
        );
    }

    /// Renders every family in the Prometheus text exposition format.
    ///
    /// The payload ends with a `# EOF` line; the TCP protocol relies on that
    /// sentinel to frame this one multi-line reply.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        let families = self.families.lock().expect("metrics registry poisoned");
        for family in families.iter() {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&family.help);
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.type_name);
            out.push('\n');
            for row in &family.rows {
                match &row.series {
                    Series::Counter(c) => {
                        render_simple(&mut out, &family.name, &row.labels, &c.get().to_string());
                    }
                    Series::CounterFn(f) => {
                        render_simple(&mut out, &family.name, &row.labels, &f().to_string());
                    }
                    Series::GaugeFn(f) => {
                        render_simple(&mut out, &family.name, &row.labels, &format_gauge(f()));
                    }
                    Series::Histogram(h) => {
                        render_histogram(&mut out, &family.name, &row.labels, h);
                    }
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }
}

fn format_gauge(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(v);
        out.push('"');
    }
    out.push('}');
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_simple(out: &mut String, name: &str, labels: &[(String, String)], value: &str) {
    out.push_str(name);
    render_labels(out, labels, None);
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let counts = h.bucket_counts();
    let mut cumulative = 0u64;
    for (i, count) in counts.iter().enumerate().take(RENDER_BUCKETS) {
        cumulative += count;
        out.push_str(name);
        out.push_str("_bucket");
        let le = Histogram::bucket_upper_bound(i).to_string();
        render_labels(out, labels, Some(("le", &le)));
        out.push(' ');
        out.push_str(&cumulative.to_string());
        out.push('\n');
    }
    out.push_str(name);
    out.push_str("_bucket");
    render_labels(out, labels, Some(("le", "+Inf")));
    out.push(' ');
    out.push_str(&h.count().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum");
    render_labels(out, labels, None);
    out.push(' ');
    out.push_str(&h.sum().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_count");
    render_labels(out, labels, None);
    out.push(' ');
    out.push_str(&h.count().to_string());
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_and_read() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn histogram_buckets_by_powers_of_two() {
        let h = Histogram::new();
        h.record(Duration::from_micros(0)); // bucket 0
        h.record(Duration::from_micros(1)); // bucket 1: [1, 2)
        h.record(Duration::from_micros(3)); // bucket 2: [2, 4)
        h.record(Duration::from_micros(1000)); // bucket 10: [512, 1024)
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 1);
        assert_eq!(counts[10], 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1004);
    }

    #[test]
    fn quantile_at_exact_power_of_two_boundaries() {
        // A value of exactly 2^k lands in bucket k+1 ([2^k, 2^(k+1))), so the
        // reported (conservative, upper-bound) quantile is 2^(k+1).
        for k in 0..10u32 {
            let h = Histogram::new();
            h.record_value(1 << k);
            assert_eq!(
                h.quantile_value(0.5),
                Some(u64::from(1u32 << (k + 1))),
                "value 2^{k} must report upper bound 2^{}",
                k + 1
            );
        }
        // One tick below the boundary stays in the lower bucket.
        let h = Histogram::new();
        h.record_value((1 << 8) - 1);
        assert_eq!(h.quantile_value(1.0), Some(1 << 8));
    }

    #[test]
    fn quantiles_partition_a_mixed_population() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record_value(3); // bucket 2, upper bound 4
        }
        for _ in 0..10 {
            h.record_value(1000); // bucket 10, upper bound 1024
        }
        assert_eq!(h.quantile_value(0.5), Some(4));
        assert_eq!(h.quantile_value(0.9), Some(4));
        assert_eq!(h.quantile_value(0.99), Some(1024));
        assert_eq!(h.quantile(0.99), Some(Duration::from_micros(1024)));
        // q is clamped: 0 reports the smallest occupied bucket, >1 acts as 1.
        assert_eq!(h.quantile_value(0.0), Some(4));
        assert_eq!(h.quantile_value(1.1), Some(1024));
        assert_eq!(Histogram::new().quantile_value(0.5), None);
    }

    #[test]
    fn saturation_path_counts_without_bucketing() {
        let h = Histogram::new();
        h.record_value(SATURATION_BOUND_US); // exactly at the bound: saturates
        h.record_value(SATURATION_BOUND_US - 1); // one below: top bucket
        h.record_value(u64::MAX); // far past: saturates, sum saturates
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 1);
        // The saturated tail pins every quantile at the saturation bound once
        // the rank passes the bucketed observations.
        assert_eq!(h.quantile_value(1.0), Some(SATURATION_BOUND_US));
        assert_eq!(h.sum(), u64::MAX); // saturating add, no wraparound
    }

    #[test]
    fn merge_matches_recording_into_one_histogram() {
        let merged = Histogram::new();
        let single = Histogram::new();
        let parts = [Histogram::new(), Histogram::new(), Histogram::new()];
        let samples: [&[u64]; 3] = [&[0, 1, 7, 1 << 20], &[3, 3, 3], &[SATURATION_BOUND_US, 512]];
        for (part, values) in parts.iter().zip(samples.iter()) {
            for &v in *values {
                part.record_value(v);
                single.record_value(v);
            }
            merged.merge_from(part);
        }
        assert_eq!(merged.bucket_counts(), single.bucket_counts());
        assert_eq!(merged.saturated(), single.saturated());
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.sum(), single.sum());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile_value(q), single.quantile_value(q));
        }
    }

    #[test]
    fn registry_renders_prometheus_text_with_eof_sentinel() {
        let registry = Registry::new();
        let hits = registry.counter("demo_total", "Demo counter", &[("outcome", "hit")]);
        let misses = registry.counter("demo_total", "Demo counter", &[("outcome", "miss")]);
        registry.counter_fn("derived_total", "Derived", &[], || 7);
        registry.gauge_fn("level", "Gauge", &[], || 2.5);
        let h = registry.histogram("lat_us", "Latency", &[("algo", "exactsim")]);
        hits.add(3);
        misses.inc();
        h.record(Duration::from_micros(5));
        let text = registry.render();
        assert!(text.contains("# HELP demo_total Demo counter\n"));
        assert!(text.contains("# TYPE demo_total counter\n"));
        assert!(text.contains("demo_total{outcome=\"hit\"} 3\n"));
        assert!(text.contains("demo_total{outcome=\"miss\"} 1\n"));
        assert!(text.contains("derived_total 7\n"));
        assert!(text.contains("level 2.5\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        // 5 µs lands in bucket 3 ([4, 8)): cumulative counts step at le="8".
        assert!(text.contains("lat_us_bucket{algo=\"exactsim\",le=\"4\"} 0\n"));
        assert!(text.contains("lat_us_bucket{algo=\"exactsim\",le=\"8\"} 1\n"));
        assert!(text.contains("lat_us_bucket{algo=\"exactsim\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_us_sum{algo=\"exactsim\"} 5\n"));
        assert!(text.contains("lat_us_count{algo=\"exactsim\"} 1\n"));
        assert!(text.ends_with("# EOF\n"));
        // One HELP line per family, even with several label rows.
        assert_eq!(text.matches("# HELP demo_total").count(), 1);
    }

    #[test]
    fn histogram_exposition_folds_the_deep_tail_into_inf() {
        let registry = Registry::new();
        let h = registry.histogram("deep_us", "Deep", &[]);
        h.record_value(1 << 35); // beyond the rendered le range
        let text = registry.render();
        assert!(!text.contains("le=\"68719476736\"")); // 2^36 never rendered
        assert!(text.contains("deep_us_bucket{le=\"1073741824\"} 0\n")); // 2^30
        assert!(text.contains("deep_us_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("deep_us_count 1\n"));
    }
}
