//! Lightweight per-request tracing: a thread-local span buffer plus
//! monotonic stage timers.
//!
//! Tracing is opt-in per request: a front end calls [`begin`], the layers it
//! calls into record stages with [`stage`] (a drop guard), and [`finish`]
//! collects the spans. When no trace is active the cost of a stage guard is
//! one `Instant::now()` pair, one histogram record, and one thread-local
//! flag check — cheap enough to leave on unconditionally, which is what the
//! serving stack does: stage histograms populate on every request, spans
//! only while a `trace <request>` is being answered.
//!
//! The buffer is thread-local on purpose: the serving stack executes one
//! request per thread end to end (worker pool handoff happens above the
//! traced region), so no cross-thread propagation is needed, and an
//! abandoned trace (e.g. a panicking request) is simply overwritten by the
//! next [`begin`] on that thread.

use std::cell::RefCell;
use std::time::{Duration, Instant};

use crate::metrics::Histogram;

/// One completed stage inside a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (static: stage sets are fixed at compile time).
    pub name: &'static str,
    /// Microseconds from the start of the trace to the start of this stage.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
}

/// A finished trace: total wall time plus the recorded stages in
/// completion order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceReport {
    /// Wall time from [`begin`] to [`finish`], in microseconds.
    pub total_us: u64,
    /// Completed spans, in the order their guards dropped.
    pub spans: Vec<SpanRecord>,
}

struct ActiveTrace {
    started: Instant,
    spans: Vec<SpanRecord>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Starts a trace on this thread, replacing any abandoned one.
pub fn begin() {
    ACTIVE.with(|cell| {
        *cell.borrow_mut() = Some(ActiveTrace {
            started: Instant::now(),
            spans: Vec::with_capacity(8),
        });
    });
}

/// Whether a trace is active on this thread.
#[must_use]
pub fn is_active() -> bool {
    ACTIVE.with(|cell| cell.borrow().is_some())
}

/// Ends the active trace and returns its report, or `None` if no trace was
/// active on this thread.
pub fn finish() -> Option<TraceReport> {
    ACTIVE.with(|cell| {
        cell.borrow_mut().take().map(|active| TraceReport {
            total_us: duration_us(active.started.elapsed()),
            spans: active.spans,
        })
    })
}

/// Records one completed span into the active trace (no-op otherwise).
///
/// `started_at` anchors the span on the trace's own timeline; a span that
/// started before [`begin`] clamps to offset zero.
pub fn record(name: &'static str, started_at: Instant, duration: Duration) {
    ACTIVE.with(|cell| {
        if let Some(active) = cell.borrow_mut().as_mut() {
            active.spans.push(SpanRecord {
                name,
                start_us: duration_us(started_at.saturating_duration_since(active.started)),
                dur_us: duration_us(duration),
            });
        }
    });
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Drop guard timing one stage.
///
/// On drop it records the elapsed time into the optional histogram (always)
/// and into the active trace (only if one is running). Construct with
/// [`stage`].
pub struct StageTimer<'a> {
    name: &'static str,
    histogram: Option<&'a Histogram>,
    started: Instant,
}

/// Starts timing a stage; the returned guard records on drop.
///
/// ```
/// use exactsim_obs::metrics::Histogram;
/// use exactsim_obs::trace;
///
/// let hist = Histogram::new();
/// trace::begin();
/// {
///     let _timer = trace::stage("kernel", Some(&hist));
///     // ... stage work ...
/// }
/// let report = trace::finish().unwrap();
/// assert_eq!(report.spans.len(), 1);
/// assert_eq!(report.spans[0].name, "kernel");
/// assert_eq!(hist.count(), 1);
/// ```
#[must_use]
pub fn stage<'a>(name: &'static str, histogram: Option<&'a Histogram>) -> StageTimer<'a> {
    StageTimer {
        name,
        histogram,
        started: Instant::now(),
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        if let Some(histogram) = self.histogram {
            histogram.record(elapsed);
        }
        record(self.name, self.started, elapsed);
    }
}

/// Renders spans as a JSON array (stage names are static identifiers, so no
/// escaping is needed).
#[must_use]
pub fn spans_to_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            span.name, span.start_us, span.dur_us
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_collect_only_while_a_trace_is_active() {
        assert!(!is_active());
        assert!(finish().is_none());
        // No trace: stage guard still records into the histogram.
        let hist = Histogram::new();
        drop(stage("idle", Some(&hist)));
        assert_eq!(hist.count(), 1);
        assert!(finish().is_none());

        begin();
        assert!(is_active());
        drop(stage("parse", None));
        drop(stage("kernel", Some(&hist)));
        let report = finish().expect("trace was active");
        assert!(!is_active());
        assert_eq!(report.spans.len(), 2);
        assert_eq!(report.spans[0].name, "parse");
        assert_eq!(report.spans[1].name, "kernel");
        assert_eq!(hist.count(), 2);
    }

    #[test]
    fn begin_replaces_an_abandoned_trace() {
        begin();
        drop(stage("stale", None));
        begin(); // e.g. the previous request panicked mid-trace
        drop(stage("fresh", None));
        let report = finish().unwrap();
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].name, "fresh");
    }

    #[test]
    fn manual_record_anchors_on_the_trace_timeline() {
        begin();
        let start = Instant::now();
        record("manual", start, Duration::from_micros(42));
        let report = finish().unwrap();
        assert_eq!(report.spans[0].dur_us, 42);
    }

    #[test]
    fn spans_render_as_json() {
        let spans = vec![
            SpanRecord {
                name: "cache",
                start_us: 1,
                dur_us: 2,
            },
            SpanRecord {
                name: "kernel",
                start_us: 3,
                dur_us: 400,
            },
        ];
        assert_eq!(
            spans_to_json(&spans),
            "[{\"name\":\"cache\",\"start_us\":1,\"dur_us\":2},\
             {\"name\":\"kernel\",\"start_us\":3,\"dur_us\":400}]"
        );
        assert_eq!(spans_to_json(&[]), "[]");
    }
}
