//! Leveled operational logger with text and JSON output.
//!
//! A deliberately small substitute for the `tracing`/`log` ecosystem (the
//! build environment is offline): a process-global level filter and output
//! format, structured key/value fields, and one line per event on stderr.
//! Text mode matches the `target: message` style the binaries have always
//! printed; JSON mode (`simrank-serve --log-json`) emits one object per line
//! so the stream can be shipped to a log pipeline unparsed.
//!
//! Rendering is a pure function ([`render`]) so formats are testable without
//! capturing stderr.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::escape_json;

/// Event severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The operation failed; an operator should look.
    Error,
    /// Something degraded but the process carries on.
    Warn,
    /// Normal operational milestones (startup, shutdown, recovery).
    Info,
    /// High-volume detail, off by default.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            3 => Level::Debug,
            _ => Level::Info,
        }
    }
}

/// Output format for emitted events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// `target: message (k=v, ...)` — the human-facing default.
    Text,
    /// One JSON object per line: `{"ts_ms":..,"level":..,"target":..,...}`.
    Json,
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(2); // Info
static FORMAT: AtomicU8 = AtomicU8::new(0); // Text

/// Sets the process-global maximum level that will be emitted.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current maximum emitted level.
#[must_use]
pub fn level() -> Level {
    Level::from_u8(MAX_LEVEL.load(Ordering::Relaxed))
}

/// Sets the process-global output format.
pub fn set_format(format: LogFormat) {
    FORMAT.store(matches!(format, LogFormat::Json) as u8, Ordering::Relaxed);
}

/// The current output format.
#[must_use]
pub fn format() -> LogFormat {
    if FORMAT.load(Ordering::Relaxed) == 1 {
        LogFormat::Json
    } else {
        LogFormat::Text
    }
}

/// A structured field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (escaped on output).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Renders one event in the given format — pure, for tests; [`log`] adds the
/// timestamp and writes to stderr.
#[must_use]
pub fn render(
    format: LogFormat,
    ts_ms: u64,
    level: Level,
    target: &str,
    message: &str,
    fields: &[(&str, FieldValue)],
) -> String {
    match format {
        LogFormat::Text => {
            let mut line = format!("{target}: {message}");
            if !fields.is_empty() {
                line.push_str(" (");
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        line.push_str(", ");
                    }
                    let _ = match value {
                        FieldValue::U64(v) => write!(line, "{key}={v}"),
                        FieldValue::I64(v) => write!(line, "{key}={v}"),
                        FieldValue::F64(v) => write!(line, "{key}={v}"),
                        FieldValue::Bool(v) => write!(line, "{key}={v}"),
                        FieldValue::Str(v) => write!(line, "{key}={v}"),
                    };
                }
                line.push(')');
            }
            line
        }
        LogFormat::Json => {
            let mut line = format!(
                "{{\"ts_ms\":{ts_ms},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
                level.as_str(),
                escape_json(target),
                escape_json(message)
            );
            for (key, value) in fields {
                let _ = match value {
                    FieldValue::U64(v) => write!(line, ",\"{}\":{v}", escape_json(key)),
                    FieldValue::I64(v) => write!(line, ",\"{}\":{v}", escape_json(key)),
                    FieldValue::F64(v) => write!(line, ",\"{}\":{v}", escape_json(key)),
                    FieldValue::Bool(v) => write!(line, ",\"{}\":{v}", escape_json(key)),
                    FieldValue::Str(v) => {
                        write!(line, ",\"{}\":\"{}\"", escape_json(key), escape_json(v))
                    }
                };
            }
            line.push('}');
            line
        }
    }
}

/// Emits one event to stderr if `level` passes the global filter.
pub fn log(level: Level, target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    if level > self::level() {
        return;
    }
    let ts_ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0);
    eprintln!(
        "{}",
        render(format(), ts_ms, level, target, message, fields)
    );
}

/// Emits at [`Level::Error`].
pub fn error(target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Error, target, message, fields);
}

/// Emits at [`Level::Warn`].
pub fn warn(target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Warn, target, message, fields);
}

/// Emits at [`Level::Info`].
pub fn info(target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Info, target, message, fields);
}

/// Emits at [`Level::Debug`].
pub fn debug(target: &str, message: &str, fields: &[(&str, FieldValue)]) {
    log(Level::Debug, target, message, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_matches_the_legacy_stderr_style() {
        let line = render(
            LogFormat::Text,
            0,
            Level::Info,
            "simrank-serve",
            "shutdown snapshot written",
            &[("epoch", FieldValue::U64(7))],
        );
        assert_eq!(line, "simrank-serve: shutdown snapshot written (epoch=7)");
        let bare = render(LogFormat::Text, 0, Level::Info, "t", "msg", &[]);
        assert_eq!(bare, "t: msg");
    }

    #[test]
    fn json_format_is_one_escaped_object_per_event() {
        let line = render(
            LogFormat::Json,
            1234,
            Level::Error,
            "simrank-serve",
            "write failed: \"disk\"",
            &[
                ("path", FieldValue::Str("/tmp/x".into())),
                ("attempts", FieldValue::U64(3)),
                ("fatal", FieldValue::Bool(true)),
            ],
        );
        assert_eq!(
            line,
            "{\"ts_ms\":1234,\"level\":\"error\",\"target\":\"simrank-serve\",\
             \"msg\":\"write failed: \\\"disk\\\"\",\"path\":\"/tmp/x\",\
             \"attempts\":3,\"fatal\":true}"
        );
    }

    #[test]
    fn level_ordering_filters_more_verbose_events() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Debug);
        // Round-trips through the atomic encoding.
        for l in [Level::Error, Level::Warn, Level::Info, Level::Debug] {
            assert_eq!(Level::from_u8(l as u8), l);
        }
    }

    #[test]
    fn field_values_convert_from_common_types() {
        assert_eq!(FieldValue::from(3u64), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i64), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }
}
