//! Deterministic, scenario-scriptable fault injection.
//!
//! Production code is sprinkled with *named fault sites* — single calls to
//! [`check`] at the exact point where an I/O operation can fail in the real
//! world (`wal.fsync`, `page.read`, `net.connect`, …). When injection is
//! disabled (the default) a site costs one relaxed atomic load and nothing
//! else; no rules are parsed, no locks are taken. When a *fault spec* is
//! installed via [`configure`] (or [`configure_from_env`] reading the
//! `FAULT_SPEC` environment variable, surfaced as `simrank-serve
//! --fault-spec`), matching sites fire scripted failures deterministically.
//!
//! # Spec grammar
//!
//! A spec is a `;`-separated list of rules. Each rule is
//!
//! ```text
//! SITE=TRIGGER[:N][:ACTION[:ARG]]
//! ```
//!
//! * `SITE` — one of the constants in [`sites`] (unknown names are rejected
//!   so typos fail fast).
//! * `TRIGGER` — when the rule fires, counted per rule over that rule's own
//!   hits of the site:
//!   * `always` — every hit.
//!   * `nth:N` — exactly the N-th hit (1-based), once.
//!   * `every:N` — every N-th hit (the N-th, 2N-th, …).
//!   * `after:N` — every hit after the first N.
//!   * `prob:F` — each hit independently with probability `F` (`0.0..=1.0`),
//!     drawn from a seeded [SplitMix64] stream so runs are reproducible.
//! * `ACTION` — what firing does (default `error`):
//!   * `error` — the site reports an injected I/O failure.
//!   * `torn` — like `error`, but the caller is asked to model a *torn*
//!     operation (e.g. a partially persisted WAL frame, as after power loss
//!     mid-write). Only meaningful at sites that document support for it.
//!   * `delay:MS` — sleep `MS` milliseconds, then let the operation proceed
//!     (and keep evaluating later rules for the same site).
//! * The pseudo-rule `seed=N` seeds the `prob` RNG (default seed `0`).
//!
//! Example: `wal.fsync=every:7:torn;page.read=prob:0.01;seed=42`.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Canonical fault-site names. Production code passes these to [`check`];
/// specs reference them on the left-hand side of rules.
pub mod sites {
    /// The WAL append's `fsync` (durability point of a commit). Supports the
    /// `torn` action: the store leaves a partial frame on disk, modelling
    /// power loss mid-append.
    pub const WAL_FSYNC: &str = "wal.fsync";
    /// Snapshot file creation/write (`snapshot-<epoch>.bin` tmp file).
    pub const SNAPSHOT_WRITE: &str = "snapshot.write";
    /// A page read from an `epoch-<N>.pages` file into the buffer pool.
    pub const PAGE_READ: &str = "page.read";
    /// Page checksum verification — firing reports the page as corrupt
    /// even though the bytes on disk are fine (bit-rot modelling).
    pub const PAGE_CRC: &str = "page.crc";
    /// Establishing a TCP connection to a remote shard.
    pub const NET_CONNECT: &str = "net.connect";
    /// Reading a reply line from a remote shard.
    pub const NET_READ: &str = "net.read";
    /// Sending a request line to a remote shard.
    pub const NET_WRITE: &str = "net.write";
}

/// Every site name accepted in a spec, used to reject typos at parse time.
const KNOWN_SITES: &[&str] = &[
    sites::WAL_FSYNC,
    sites::SNAPSHOT_WRITE,
    sites::PAGE_READ,
    sites::PAGE_CRC,
    sites::NET_CONNECT,
    sites::NET_READ,
    sites::NET_WRITE,
];

/// How a fired fault should fail, as seen by the instrumented call site.
///
/// `delay` actions never surface here — [`check`] sleeps internally and the
/// operation proceeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failure {
    /// Fail the operation with an injected error.
    Error,
    /// Fail the operation *and* leave it partially applied (torn write).
    /// Sites that don't document torn support treat this as [`Failure::Error`].
    Torn,
}

#[derive(Debug, Clone, Copy)]
enum Trigger {
    Always,
    Nth(u64),
    Every(u64),
    After(u64),
    Prob(f64),
}

#[derive(Debug, Clone, Copy)]
enum Action {
    Error,
    Torn,
    Delay(Duration),
}

struct Rule {
    site: &'static str,
    trigger: Trigger,
    action: Action,
    hits: AtomicU64,
}

struct Plan {
    rules: Vec<Rule>,
    rng: u64,
}

/// Fast-path gate: one relaxed load when injection is off.
static ENABLED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn intern_site(name: &str) -> Option<&'static str> {
    KNOWN_SITES.iter().copied().find(|s| *s == name)
}

fn parse_rule(rule: &str) -> Result<Rule, String> {
    let (site_name, value) = rule
        .split_once('=')
        .ok_or_else(|| format!("fault rule '{rule}' is missing '='"))?;
    let site = intern_site(site_name.trim())
        .ok_or_else(|| format!("unknown fault site '{}'", site_name.trim()))?;
    let mut parts = value.trim().split(':');
    let trigger_name = parts.next().unwrap_or("");
    let mut arg = |what: &str| {
        parts
            .next()
            .ok_or_else(|| format!("trigger '{trigger_name}' at {site} needs a {what} argument"))
    };
    let trigger = match trigger_name {
        "always" => Trigger::Always,
        "nth" | "every" | "after" => {
            let n: u64 = arg("count")?
                .parse()
                .map_err(|_| format!("bad count in fault rule '{rule}'"))?;
            if n == 0 && trigger_name != "after" {
                return Err(format!("count must be >= 1 in fault rule '{rule}'"));
            }
            match trigger_name {
                "nth" => Trigger::Nth(n),
                "every" => Trigger::Every(n),
                _ => Trigger::After(n),
            }
        }
        "prob" => {
            let p: f64 = arg("probability")?
                .parse()
                .map_err(|_| format!("bad probability in fault rule '{rule}'"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability out of [0,1] in fault rule '{rule}'"));
            }
            Trigger::Prob(p)
        }
        other => return Err(format!("unknown fault trigger '{other}' in rule '{rule}'")),
    };
    let action = match parts.next() {
        None => Action::Error,
        Some("error") => Action::Error,
        Some("torn") => Action::Torn,
        Some("delay") => {
            let ms: u64 = parts
                .next()
                .ok_or_else(|| format!("delay action needs ':MS' in fault rule '{rule}'"))?
                .parse()
                .map_err(|_| format!("bad delay milliseconds in fault rule '{rule}'"))?;
            Action::Delay(Duration::from_millis(ms))
        }
        Some(other) => return Err(format!("unknown fault action '{other}' in rule '{rule}'")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("trailing ':{extra}' in fault rule '{rule}'"));
    }
    Ok(Rule {
        site,
        trigger,
        action,
        hits: AtomicU64::new(0),
    })
}

/// Parse `spec` and install it as the process-wide fault plan, enabling
/// injection. An empty (or all-whitespace) spec is equivalent to [`reset`].
///
/// # Errors
///
/// Returns a human-readable message if any rule fails to parse; the
/// previously installed plan (if any) is left untouched in that case.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut rules = Vec::new();
    let mut seed = 0u64;
    for rule in spec.split(';') {
        let rule = rule.trim();
        if rule.is_empty() {
            continue;
        }
        if let Some(value) = rule.strip_prefix("seed=") {
            seed = value
                .trim()
                .parse()
                .map_err(|_| format!("bad seed in fault rule '{rule}'"))?;
            continue;
        }
        rules.push(parse_rule(rule)?);
    }
    let mut plan = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    if rules.is_empty() {
        *plan = None;
        ENABLED.store(false, Ordering::Relaxed);
    } else {
        *plan = Some(Plan { rules, rng: seed });
        ENABLED.store(true, Ordering::Relaxed);
    }
    Ok(())
}

/// Install a fault plan from the `FAULT_SPEC` environment variable, if set.
///
/// # Errors
///
/// Propagates [`configure`]'s parse errors; absent/empty `FAULT_SPEC` is Ok.
pub fn configure_from_env() -> Result<(), String> {
    match std::env::var("FAULT_SPEC") {
        Ok(spec) => configure(&spec),
        Err(_) => Ok(()),
    }
}

/// Remove any installed fault plan and disable injection.
pub fn reset() {
    let mut plan = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    *plan = None;
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether a fault plan is currently installed.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Evaluate one hit of the named fault site.
///
/// Returns `None` when the operation should proceed normally — always the
/// case when injection is disabled, at the cost of a single relaxed atomic
/// load. `delay` actions sleep here and then fall through to later rules, so
/// callers only ever observe [`Failure::Error`] / [`Failure::Torn`].
pub fn check(site: &str) -> Option<Failure> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    let mut delay = None;
    {
        let mut guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        let plan = guard.as_mut()?;
        let mut fired = None;
        for rule in &plan.rules {
            if rule.site != site {
                continue;
            }
            let hit = rule.hits.fetch_add(1, Ordering::Relaxed) + 1;
            let fires = match rule.trigger {
                Trigger::Always => true,
                Trigger::Nth(n) => hit == n,
                Trigger::Every(n) => hit % n == 0,
                Trigger::After(n) => hit > n,
                Trigger::Prob(p) => {
                    let draw = splitmix64(&mut plan.rng) >> 11;
                    (draw as f64) < p * (1u64 << 53) as f64
                }
            };
            if !fires {
                continue;
            }
            match rule.action {
                Action::Error => fired = Some(Failure::Error),
                Action::Torn => fired = Some(Failure::Torn),
                Action::Delay(d) => {
                    delay = Some(delay.map_or(d, |acc: Duration| acc + d));
                    continue;
                }
            }
            break;
        }
        if let Some(failure) = fired {
            if let Some(d) = delay {
                drop(guard);
                std::thread::sleep(d);
            }
            return Some(failure);
        }
    }
    if let Some(d) = delay {
        std::thread::sleep(d);
    }
    None
}

/// Total hits recorded for `site` across all rules (0 when disabled or the
/// site has no rules). Useful for harness assertions.
pub fn hits(site: &str) -> u64 {
    let plan = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    plan.as_ref().map_or(0, |p| {
        p.rules
            .iter()
            .filter(|r| r.site == site)
            .map(|r| r.hits.load(Ordering::Relaxed))
            .sum()
    })
}

/// Build an `io::Error` for an injected failure at `site`, tagged so it is
/// recognisable in logs and assertions.
pub fn injected_io_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault at {site}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and `cargo test` runs tests in threads,
    // so every test that installs a plan serialises on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_is_a_no_op() {
        let _g = guard();
        reset();
        assert!(!enabled());
        assert_eq!(check(sites::WAL_FSYNC), None);
        assert_eq!(hits(sites::WAL_FSYNC), 0);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let _g = guard();
        configure("wal.fsync=nth:3").unwrap();
        assert_eq!(check(sites::WAL_FSYNC), None);
        assert_eq!(check(sites::WAL_FSYNC), None);
        assert_eq!(check(sites::WAL_FSYNC), Some(Failure::Error));
        assert_eq!(check(sites::WAL_FSYNC), None);
        assert_eq!(hits(sites::WAL_FSYNC), 4);
        reset();
    }

    #[test]
    fn every_fires_periodically_with_action() {
        let _g = guard();
        configure("wal.fsync=every:2:torn").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| check(sites::WAL_FSYNC).is_some()).collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
        assert_eq!(check(sites::WAL_FSYNC), None);
        assert_eq!(check(sites::WAL_FSYNC), Some(Failure::Torn));
        reset();
    }

    #[test]
    fn after_fires_on_every_later_hit() {
        let _g = guard();
        configure("page.read=after:2").unwrap();
        assert_eq!(check(sites::PAGE_READ), None);
        assert_eq!(check(sites::PAGE_READ), None);
        assert_eq!(check(sites::PAGE_READ), Some(Failure::Error));
        assert_eq!(check(sites::PAGE_READ), Some(Failure::Error));
        reset();
    }

    #[test]
    fn prob_is_seeded_and_deterministic() {
        let _g = guard();
        let run = |seed: u64| -> Vec<bool> {
            configure(&format!("net.read=prob:0.5;seed={seed}")).unwrap();
            let out = (0..64).map(|_| check(sites::NET_READ).is_some()).collect();
            reset();
            out
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must reproduce the same firing pattern");
        assert_ne!(a, c, "different seeds should diverge");
        let fires = a.iter().filter(|f| **f).count();
        assert!((16..=48).contains(&fires), "p=0.5 wildly off: {fires}/64");
    }

    #[test]
    fn prob_extremes_never_and_always_fire() {
        let _g = guard();
        configure("net.write=prob:0.0;net.connect=prob:1.0").unwrap();
        for _ in 0..32 {
            assert_eq!(check(sites::NET_WRITE), None);
            assert_eq!(check(sites::NET_CONNECT), Some(Failure::Error));
        }
        reset();
    }

    #[test]
    fn sites_are_independent() {
        let _g = guard();
        configure("wal.fsync=always").unwrap();
        assert_eq!(check(sites::SNAPSHOT_WRITE), None);
        assert_eq!(check(sites::WAL_FSYNC), Some(Failure::Error));
        reset();
    }

    #[test]
    fn delay_falls_through_to_later_rules() {
        let _g = guard();
        configure("net.read=always:delay:1;net.read=nth:2").unwrap();
        let before = std::time::Instant::now();
        assert_eq!(check(sites::NET_READ), None);
        assert_eq!(check(sites::NET_READ), Some(Failure::Error));
        assert!(before.elapsed() >= Duration::from_millis(2));
        reset();
    }

    #[test]
    fn empty_spec_disables() {
        let _g = guard();
        configure("wal.fsync=always").unwrap();
        assert!(enabled());
        configure("  ").unwrap();
        assert!(!enabled());
    }

    #[test]
    fn bad_specs_are_rejected_and_leave_plan_untouched() {
        let _g = guard();
        configure("wal.fsync=nth:1").unwrap();
        for bad in [
            "wal.fsync",                // missing '='
            "bogus.site=always",        // unknown site
            "wal.fsync=sometimes",      // unknown trigger
            "wal.fsync=nth",            // missing count
            "wal.fsync=nth:0",          // zero count
            "wal.fsync=nth:x",          // non-numeric count
            "wal.fsync=prob:1.5",       // probability out of range
            "wal.fsync=always:explode", // unknown action
            "wal.fsync=always:delay",   // delay without ms
            "wal.fsync=always:error:9", // trailing junk
            "seed=zebra",               // bad seed
        ] {
            assert!(configure(bad).is_err(), "spec '{bad}' should be rejected");
        }
        // The good plan survived all the failed installs.
        assert_eq!(check(sites::WAL_FSYNC), Some(Failure::Error));
        reset();
    }

    #[test]
    fn injected_errors_are_tagged() {
        let err = injected_io_error(sites::PAGE_READ);
        assert!(err.to_string().contains("injected fault at page.read"));
    }
}
