//! Fixed-capacity slow-query ring buffer.
//!
//! Requests slower than a (runtime-adjustable) threshold are recorded into a
//! bounded ring: the newest entries win, memory is capped, and the fast path
//! pays only one atomic load plus a comparison when the request is under the
//! threshold — the request string is built lazily, so non-slow queries never
//! allocate for the slow log.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::json::escape_json;

/// One recorded slow request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowQueryRecord {
    /// Monotonic sequence number (total slow queries seen, 1-based), so an
    /// operator can tell how many entries the ring has dropped.
    pub seq: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The request, in canonical wire form.
    pub request: String,
    /// How the request ended (`hit`, `miss`, `dedup`, `error`, ...).
    pub outcome: &'static str,
    /// How long it took.
    pub duration: Duration,
}

impl SlowQueryRecord {
    /// Renders this record as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"unix_ms\":{},\"request\":\"{}\",\"outcome\":\"{}\",\"duration_us\":{}}}",
            self.seq,
            self.unix_ms,
            escape_json(&self.request),
            self.outcome,
            u64::try_from(self.duration.as_micros()).unwrap_or(u64::MAX),
        )
    }
}

struct Ring {
    next_seq: u64,
    entries: VecDeque<SlowQueryRecord>,
}

/// The slow-query ring buffer.
pub struct SlowLog {
    capacity: usize,
    threshold_us: AtomicU64,
    ring: Mutex<Ring>,
}

impl SlowLog {
    /// Creates a ring holding at most `capacity` entries, recording requests
    /// that took at least `threshold` (a zero threshold records everything).
    #[must_use]
    pub fn new(capacity: usize, threshold: Duration) -> Self {
        SlowLog {
            capacity,
            threshold_us: AtomicU64::new(duration_us(threshold)),
            ring: Mutex::new(Ring {
                next_seq: 0,
                entries: VecDeque::with_capacity(capacity.min(64)),
            }),
        }
    }

    /// The current recording threshold.
    #[must_use]
    pub fn threshold(&self) -> Duration {
        Duration::from_micros(self.threshold_us.load(Ordering::Relaxed))
    }

    /// Changes the recording threshold at runtime.
    pub fn set_threshold(&self, threshold: Duration) {
        self.threshold_us
            .store(duration_us(threshold), Ordering::Relaxed);
    }

    /// Maximum entries retained.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records the request if it met the threshold; `request` is only called
    /// (and only allocates) when it did. Returns whether it was recorded.
    pub fn observe(
        &self,
        duration: Duration,
        outcome: &'static str,
        request: impl FnOnce() -> String,
    ) -> bool {
        if duration_us(duration) < self.threshold_us.load(Ordering::Relaxed) {
            return false;
        }
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let mut ring = self.ring.lock().expect("slow log poisoned");
        ring.next_seq += 1;
        let record = SlowQueryRecord {
            seq: ring.next_seq,
            unix_ms,
            request: request(),
            outcome,
            duration,
        };
        if ring.entries.len() == self.capacity {
            ring.entries.pop_front();
        }
        ring.entries.push_back(record);
        true
    }

    /// Total slow queries ever observed (including ones the ring dropped).
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.ring.lock().expect("slow log poisoned").next_seq
    }

    /// Entries currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow log poisoned").entries.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` most recent entries, newest first.
    #[must_use]
    pub fn recent(&self, n: usize) -> Vec<SlowQueryRecord> {
        let ring = self.ring.lock().expect("slow log poisoned");
        ring.entries.iter().rev().take(n).cloned().collect()
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_below_the_threshold_never_build_their_string() {
        let log = SlowLog::new(4, Duration::from_millis(10));
        let recorded = log.observe(Duration::from_millis(1), "hit", || {
            panic!("fast request must not allocate a slow-log string")
        });
        assert!(!recorded);
        assert!(log.is_empty());
        assert_eq!(log.total_recorded(), 0);
    }

    #[test]
    fn slow_requests_are_recorded_newest_first() {
        let log = SlowLog::new(4, Duration::from_millis(10));
        assert!(log.observe(Duration::from_millis(10), "miss", || "query 1".into()));
        assert!(log.observe(Duration::from_millis(25), "dedup", || "query 2".into()));
        let recent = log.recent(10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].request, "query 2");
        assert_eq!(recent[0].seq, 2);
        assert_eq!(recent[1].request, "query 1");
        assert_eq!(log.recent(1).len(), 1);
    }

    #[test]
    fn the_ring_drops_oldest_but_keeps_counting() {
        let log = SlowLog::new(2, Duration::ZERO);
        for i in 0..5u32 {
            log.observe(Duration::from_millis(1), "miss", || format!("query {i}"));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_recorded(), 5);
        let recent = log.recent(10);
        assert_eq!(recent[0].request, "query 4");
        assert_eq!(recent[0].seq, 5);
        assert_eq!(recent[1].request, "query 3");
    }

    #[test]
    fn threshold_is_adjustable_at_runtime() {
        let log = SlowLog::new(4, Duration::from_secs(1));
        assert!(!log.observe(Duration::from_millis(5), "miss", || "q".into()));
        log.set_threshold(Duration::ZERO);
        assert_eq!(log.threshold(), Duration::ZERO);
        assert!(log.observe(Duration::from_millis(5), "miss", || "q".into()));
    }

    #[test]
    fn records_render_as_json_with_escaping() {
        let record = SlowQueryRecord {
            seq: 3,
            unix_ms: 1700000000000,
            request: "query \"7\"".into(),
            outcome: "miss",
            duration: Duration::from_micros(1500),
        };
        assert_eq!(
            record.to_json(),
            "{\"seq\":3,\"unix_ms\":1700000000000,\"request\":\"query \\\"7\\\"\",\
             \"outcome\":\"miss\",\"duration_us\":1500}"
        );
    }
}
