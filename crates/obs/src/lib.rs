//! # exactsim-obs
//!
//! Zero-dependency observability substrate for the ExactSim serving stack.
//!
//! The build environment is offline, so the usual `tracing` / `prometheus` /
//! `log` crates are unavailable; this crate provides the minimal slice of
//! each that a query-under-update serving system actually needs, shaped so
//! every other crate in the workspace can depend on it without pulling in
//! anything else:
//!
//! | module | role |
//! |---|---|
//! | [`fault`] | deterministic fault-injection registry (named sites, scripted triggers) |
//! | [`metrics`] | labeled counter/gauge/histogram registry + Prometheus text exposition |
//! | [`trace`] | thread-local tracing spans and drop-guard stage timers |
//! | [`log`] | leveled operational logger (text or one-JSON-object-per-line) |
//! | [`slowlog`] | fixed-capacity slow-query ring buffer with a runtime threshold |
//! | [`json`] | the one shared JSON string-escaping helper |
//!
//! Design constraints, in priority order:
//!
//! 1. **Hot-path cost is a few relaxed atomics.** Recording a counter or a
//!    histogram observation never locks, never allocates; the registry lock
//!    is touched only at registration (startup) and scrape time.
//! 2. **Series exist before traffic.** Everything is registered eagerly so a
//!    scrape taken before the first request already shows every series at
//!    zero — monitoring can alert on absence without a warm-up race.
//! 3. **One histogram primitive.** The power-of-two bucketed
//!    [`metrics::Histogram`] (formerly the service's `LatencyHistogram`)
//!    backs snapshots, quantiles, and the Prometheus `_bucket` series alike,
//!    so no number is computed two ways.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod fault;
pub mod json;
pub mod log;
pub mod metrics;
pub mod slowlog;
pub mod trace;

pub use json::escape_json;
pub use log::{FieldValue, Level, LogFormat};
pub use metrics::{Counter, Histogram, Registry, SATURATION_BOUND_US};
pub use slowlog::{SlowLog, SlowQueryRecord};
pub use trace::{SpanRecord, TraceReport};
