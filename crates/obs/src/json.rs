//! Minimal JSON string escaping shared by every layer that hand-writes JSON.
//!
//! The serving stack deliberately emits wire JSON with `format!` instead of a
//! serialization framework (the environment is offline and the payloads are
//! small and flat), which makes correct string escaping the one piece that
//! must live in exactly one place. It used to hide in the service stats
//! module; it now lives here, beneath every crate that writes JSON.

/// Escapes a string for embedding inside a JSON string literal.
///
/// Handles the two mandatory escapes (`"` and `\`) plus the common control
/// characters; any other byte below `0x20` is emitted as a `\u00XX` escape,
/// as required by RFC 8259.
///
/// ```
/// use exactsim_obs::json::escape_json;
/// assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
/// ```
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_strings_pass_through_unchanged() {
        assert_eq!(escape_json("query 7 exactsim"), "query 7 exactsim");
    }

    #[test]
    fn quotes_backslashes_and_controls_are_escaped() {
        assert_eq!(escape_json("\"\\\n\r\t"), "\\\"\\\\\\n\\r\\t");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_ascii_text_is_preserved_verbatim() {
        assert_eq!(escape_json("café → π"), "café → π");
    }
}
