//! Query-source selection.
//!
//! The paper issues 50 single-source queries per dataset and reports average
//! MaxError / Precision@500. This module picks those source nodes
//! deterministically (seeded), preferring nodes that actually have
//! in-neighbors — a source with `din = 0` has a trivial similarity vector and
//! would dilute the comparison.

use exactsim_graph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks `count` distinct query sources for `graph`, seeded by `seed`.
///
/// Nodes with at least one in-neighbor are preferred; if the graph has fewer
/// such nodes than requested, the remainder is filled with arbitrary nodes.
/// Returns fewer than `count` sources only when the graph itself is smaller.
pub fn query_sources(graph: &DiGraph, count: usize, seed: u64) -> Vec<NodeId> {
    let n = graph.num_nodes();
    if n == 0 || count == 0 {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = Vec::with_capacity(count.min(n));
    let mut used = vec![false; n];
    let mut attempts = 0usize;
    let max_attempts = 50 * count + 1000;
    while chosen.len() < count.min(n) && attempts < max_attempts {
        attempts += 1;
        let v = rng.gen_range(0..n) as NodeId;
        if used[v as usize] {
            continue;
        }
        if graph.in_degree(v) > 0 {
            used[v as usize] = true;
            chosen.push(v);
        }
    }
    // Fill up with any remaining nodes if the graph has too few non-trivial ones.
    if chosen.len() < count.min(n) {
        for v in 0..n as NodeId {
            if chosen.len() >= count.min(n) {
                break;
            }
            if !used[v as usize] {
                used[v as usize] = true;
                chosen.push(v);
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use exactsim_graph::generators::{barabasi_albert, star};
    use exactsim_graph::GraphBuilder;

    #[test]
    fn picks_the_requested_number_of_distinct_sources() {
        let g = barabasi_albert(500, 3, true, 1).unwrap();
        let sources = query_sources(&g, 50, 7);
        assert_eq!(sources.len(), 50);
        let mut dedup = sources.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 50);
        for &s in &sources {
            assert!(g.in_degree(s) > 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = barabasi_albert(300, 2, true, 2).unwrap();
        assert_eq!(query_sources(&g, 20, 3), query_sources(&g, 20, 3));
        assert_ne!(query_sources(&g, 20, 3), query_sources(&g, 20, 4));
    }

    #[test]
    fn falls_back_to_trivial_nodes_when_needed() {
        // A directed star has only one node with in-degree > 0 (the hub).
        let g = star(10, false);
        let sources = query_sources(&g, 5, 1);
        assert_eq!(sources.len(), 5);
        assert!(sources.contains(&0));
    }

    #[test]
    fn handles_small_and_empty_graphs() {
        let empty = GraphBuilder::new(0).build();
        assert!(query_sources(&empty, 10, 1).is_empty());
        let tiny = star(3, true);
        let sources = query_sources(&tiny, 10, 1);
        assert_eq!(sources.len(), 3);
        assert!(query_sources(&tiny, 0, 1).is_empty());
    }
}
