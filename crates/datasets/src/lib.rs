//! # exactsim-datasets
//!
//! Deterministic stand-ins for the eight datasets of the ExactSim paper's
//! Table 2, plus loaders for the real edge lists when they are available.
//!
//! The paper evaluates on four small graphs (ca-GrQc, CA-HepTh, Wikivote,
//! CA-HepPh) and four large graphs (DBLP-Author, IndoChina, It-2004,
//! Twitter) from SNAP and LAW. Those datasets cannot be redistributed here,
//! so each dataset is represented by a [`DatasetSpec`] that records the
//! paper's statistics and knows how to produce a *synthetic stand-in*: a
//! scale-free graph with the same directedness and average degree, at the
//! original node count for the small graphs and at a configurable scale-down
//! factor for the large ones. The substitution rationale is spelled out in
//! DESIGN.md; if a real SNAP/LAW edge list is placed on disk, [`DatasetSpec::
//! load_or_generate`] prefers it over the synthetic graph.

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod registry;
pub mod sources;

pub use registry::{
    all_datasets, dataset_by_key, large_datasets, small_datasets, DatasetKind, DatasetSpec,
    GeneratedDataset,
};
pub use sources::query_sources;
