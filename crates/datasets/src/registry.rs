//! The Table 2 dataset registry.

use std::path::{Path, PathBuf};

use exactsim_graph::generators::{barabasi_albert, power_law_digraph, PowerLawConfig};
use exactsim_graph::io::{read_edge_list, EdgeListOptions};
use exactsim_graph::{DiGraph, GraphError};

/// Whether the original dataset is an undirected or a directed graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Undirected (both edge directions are materialised).
    Undirected,
    /// Directed.
    Directed,
}

/// One row of the paper's Table 2, together with the recipe for its synthetic
/// stand-in.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Short key used throughout the paper's figures ("GQ", "HT", …).
    pub key: &'static str,
    /// Full dataset name as listed in Table 2.
    pub name: &'static str,
    /// Directed or undirected.
    pub kind: DatasetKind,
    /// Node count reported in the paper.
    pub paper_nodes: usize,
    /// Edge count reported in the paper (undirected edges counted once, as in
    /// Table 2).
    pub paper_edges: usize,
    /// `true` for the four "large" datasets (DB, IC, IT, TW), whose stand-ins
    /// are scaled down by default.
    pub large: bool,
    /// Default scale-down factor applied to the node count when generating
    /// the stand-in (1.0 for the small datasets).
    pub default_scale: f64,
    /// Seed used by the stand-in generator (fixed per dataset so every run of
    /// the harness sees the same graph).
    pub seed: u64,
}

/// A generated (or loaded) dataset instance.
#[derive(Clone, Debug)]
pub struct GeneratedDataset {
    /// The spec this instance came from.
    pub spec: &'static DatasetSpec,
    /// The graph.
    pub graph: DiGraph,
    /// `true` if the graph was loaded from a real edge list rather than
    /// generated.
    pub loaded_from_file: bool,
    /// The scale factor that was applied to the paper's node count.
    pub scale: f64,
}

/// The eight datasets of Table 2.
static DATASETS: [DatasetSpec; 8] = [
    DatasetSpec {
        key: "GQ",
        name: "ca-GrQc",
        kind: DatasetKind::Undirected,
        paper_nodes: 5_242,
        paper_edges: 28_968,
        large: false,
        default_scale: 1.0,
        seed: 0xD5_01,
    },
    DatasetSpec {
        key: "HT",
        name: "CA-HepTh",
        kind: DatasetKind::Undirected,
        paper_nodes: 9_877,
        paper_edges: 51_946,
        large: false,
        default_scale: 1.0,
        seed: 0xD5_02,
    },
    DatasetSpec {
        key: "WV",
        name: "Wikivote",
        kind: DatasetKind::Directed,
        paper_nodes: 7_115,
        paper_edges: 103_689,
        large: false,
        default_scale: 1.0,
        seed: 0xD5_03,
    },
    DatasetSpec {
        key: "HP",
        name: "CA-HepPh",
        kind: DatasetKind::Undirected,
        paper_nodes: 12_008,
        paper_edges: 236_978,
        large: false,
        default_scale: 1.0,
        seed: 0xD5_04,
    },
    DatasetSpec {
        key: "DB",
        name: "DBLP-Author",
        kind: DatasetKind::Undirected,
        paper_nodes: 5_425_963,
        paper_edges: 17_298_032,
        large: true,
        default_scale: 0.02,
        seed: 0xD5_05,
    },
    DatasetSpec {
        key: "IC",
        name: "IndoChina",
        kind: DatasetKind::Directed,
        paper_nodes: 7_414_768,
        paper_edges: 191_606_827,
        large: true,
        default_scale: 0.01,
        seed: 0xD5_06,
    },
    DatasetSpec {
        key: "IT",
        name: "It-2004",
        kind: DatasetKind::Directed,
        paper_nodes: 41_290_682,
        paper_edges: 1_135_718_909,
        large: true,
        default_scale: 0.002,
        seed: 0xD5_07,
    },
    DatasetSpec {
        key: "TW",
        name: "Twitter",
        kind: DatasetKind::Directed,
        paper_nodes: 41_652_230,
        paper_edges: 1_468_364_884,
        large: true,
        default_scale: 0.002,
        seed: 0xD5_08,
    },
];

/// All eight Table 2 datasets, in the paper's order.
pub fn all_datasets() -> &'static [DatasetSpec] {
    &DATASETS
}

/// The four small datasets (GQ, HT, WV, HP).
pub fn small_datasets() -> Vec<&'static DatasetSpec> {
    DATASETS.iter().filter(|d| !d.large).collect()
}

/// The four large datasets (DB, IC, IT, TW).
pub fn large_datasets() -> Vec<&'static DatasetSpec> {
    DATASETS.iter().filter(|d| d.large).collect()
}

/// Looks a dataset up by its short key (case-insensitive).
pub fn dataset_by_key(key: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.key.eq_ignore_ascii_case(key))
}

impl DatasetSpec {
    /// Average (directed) degree implied by Table 2. For undirected datasets
    /// each edge contributes two directed edges.
    pub fn paper_average_degree(&self) -> f64 {
        let m = match self.kind {
            DatasetKind::Undirected => 2 * self.paper_edges,
            DatasetKind::Directed => self.paper_edges,
        };
        m as f64 / self.paper_nodes as f64
    }

    /// Number of nodes of the stand-in at a given scale factor.
    pub fn scaled_nodes(&self, scale: f64) -> usize {
        ((self.paper_nodes as f64 * scale).round() as usize).max(16)
    }

    /// Generates the synthetic stand-in at the default scale.
    pub fn generate(&'static self) -> Result<GeneratedDataset, GraphError> {
        self.generate_scaled(self.default_scale)
    }

    /// Generates the synthetic stand-in at an explicit scale factor.
    ///
    /// * Undirected datasets use Barabási–Albert preferential attachment with
    ///   the attachment degree chosen to match the paper's average degree.
    /// * Directed datasets use the power-law configuration model
    ///   ([`power_law_digraph`]) with the paper's average degree and a heavy
    ///   in-degree tail, which is the property the SimRank algorithms'
    ///   behaviour depends on.
    pub fn generate_scaled(&'static self, scale: f64) -> Result<GeneratedDataset, GraphError> {
        let nodes = self.scaled_nodes(scale);
        let graph = match self.kind {
            DatasetKind::Undirected => {
                // Match the undirected average degree m/n; each new node
                // attaches with that many undirected edges.
                let attach = (self.paper_edges as f64 / self.paper_nodes as f64)
                    .round()
                    .max(1.0) as usize;
                barabasi_albert(nodes.max(attach + 2), attach, true, self.seed)?
            }
            DatasetKind::Directed => {
                let avg_degree = self.paper_edges as f64 / self.paper_nodes as f64;
                let edges = (avg_degree * nodes as f64).round() as usize;
                let max_possible = nodes.saturating_mul(nodes.saturating_sub(1));
                power_law_digraph(PowerLawConfig {
                    nodes,
                    edges: edges.min(max_possible / 2),
                    gamma_in: 2.1,
                    gamma_out: 2.4,
                    seed: self.seed,
                })?
            }
        };
        Ok(GeneratedDataset {
            spec: self,
            graph,
            loaded_from_file: false,
            scale,
        })
    }

    /// The conventional on-disk path of the real edge list for this dataset,
    /// relative to a data directory: `<dir>/<key>.edges`.
    pub fn edge_list_path(&self, data_dir: &Path) -> PathBuf {
        data_dir.join(format!("{}.edges", self.key.to_ascii_lowercase()))
    }

    /// Loads the real edge list if present under `data_dir`, otherwise
    /// generates the synthetic stand-in at the default scale.
    pub fn load_or_generate(
        &'static self,
        data_dir: &Path,
    ) -> Result<GeneratedDataset, GraphError> {
        let path = self.edge_list_path(data_dir);
        if path.exists() {
            let options = EdgeListOptions {
                undirected: self.kind == DatasetKind::Undirected,
                ..Default::default()
            };
            let loaded = read_edge_list(&path, options)?;
            return Ok(GeneratedDataset {
                spec: self,
                graph: loaded.graph,
                loaded_from_file: true,
                scale: 1.0,
            });
        }
        self.generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_2() {
        assert_eq!(all_datasets().len(), 8);
        assert_eq!(small_datasets().len(), 4);
        assert_eq!(large_datasets().len(), 4);
        let gq = dataset_by_key("gq").unwrap();
        assert_eq!(gq.name, "ca-GrQc");
        assert_eq!(gq.paper_nodes, 5_242);
        let tw = dataset_by_key("TW").unwrap();
        assert!(tw.large);
        assert_eq!(tw.paper_edges, 1_468_364_884);
        assert!(dataset_by_key("nope").is_none());
    }

    #[test]
    fn keys_are_unique() {
        let mut keys: Vec<_> = all_datasets().iter().map(|d| d.key).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 8);
    }

    #[test]
    fn small_stand_ins_match_paper_scale() {
        let gq = dataset_by_key("GQ").unwrap().generate().unwrap();
        assert!(!gq.loaded_from_file);
        assert_eq!(gq.graph.num_nodes(), 5_242);
        // Average directed degree within 2x of the paper's (the generator
        // matches it only approximately).
        let paper_avg = gq.spec.paper_average_degree();
        let actual_avg = gq.graph.average_degree();
        assert!(
            actual_avg > paper_avg / 2.0 && actual_avg < paper_avg * 2.0,
            "avg degree {actual_avg} vs paper {paper_avg}"
        );
    }

    #[test]
    fn directed_stand_in_is_directed_and_scaled() {
        let wv = dataset_by_key("WV").unwrap().generate().unwrap();
        assert_eq!(wv.graph.num_nodes(), 7_115);
        // A directed stand-in should have plenty of asymmetric edges.
        let asymmetric = wv
            .graph
            .iter_edges()
            .take(2000)
            .filter(|&(u, v)| !wv.graph.has_edge(v, u))
            .count();
        assert!(asymmetric > 100, "stand-in looks undirected");
    }

    #[test]
    fn large_stand_ins_are_scaled_down() {
        let db = dataset_by_key("DB").unwrap().generate().unwrap();
        assert!(db.graph.num_nodes() < db.spec.paper_nodes / 10);
        assert!(db.graph.num_nodes() > 10_000);
        let it = dataset_by_key("IT")
            .unwrap()
            .generate_scaled(0.0005)
            .unwrap();
        assert!(it.graph.num_nodes() < 50_000);
        assert!(it.graph.num_edges() > it.graph.num_nodes());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dataset_by_key("HT").unwrap().generate_scaled(0.1).unwrap();
        let b = dataset_by_key("HT").unwrap().generate_scaled(0.1).unwrap();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(
            a.graph.iter_edges().take(100).collect::<Vec<_>>(),
            b.graph.iter_edges().take(100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn load_or_generate_prefers_real_files() {
        let dir = std::env::temp_dir().join("exactsim_dataset_test");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dataset_by_key("GQ").unwrap();
        let path = spec.edge_list_path(&dir);
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let loaded = spec.load_or_generate(&dir).unwrap();
        assert!(loaded.loaded_from_file);
        assert_eq!(loaded.graph.num_nodes(), 3);
        // Undirected dataset: the file is symmetrised on load.
        assert_eq!(loaded.graph.num_edges(), 6);
        std::fs::remove_file(&path).ok();

        let generated = spec.load_or_generate(&dir).unwrap();
        assert!(!generated.loaded_from_file);
        assert_eq!(generated.graph.num_nodes(), 5_242);
    }

    #[test]
    fn scaled_nodes_has_a_floor() {
        let spec = dataset_by_key("GQ").unwrap();
        assert!(spec.scaled_nodes(0.000001) >= 16);
    }
}
