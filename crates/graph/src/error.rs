//! Error types for graph construction and IO.

use std::fmt;
use std::io;

/// Errors produced while building, loading or validating graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id `>= n` for a graph declared with `n` nodes.
    NodeOutOfRange {
        /// The offending node id.
        node: u64,
        /// The declared number of nodes.
        num_nodes: u64,
    },
    /// The edge-list input could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// An underlying IO failure (file not found, permission, …).
    Io(io::Error),
    /// A generator was asked for an impossible configuration
    /// (e.g. more edges than node pairs, zero nodes for a model that needs a seed clique).
    InvalidGeneratorParams(String),
    /// The graph is empty but the operation requires at least one node.
    EmptyGraph,
    /// A binary graph payload (see [`crate::binfmt`]) failed validation:
    /// truncated input, inconsistent declared sizes, non-monotonic offsets,
    /// out-of-range targets, or unsorted neighbor lists.
    Decode(
        /// Description of the violated invariant.
        String,
    ),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => write!(
                f,
                "node id {node} out of range for graph with {num_nodes} nodes"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "edge-list parse error on line {line}: {message}")
            }
            GraphError::Io(e) => write!(f, "io error: {e}"),
            GraphError::InvalidGeneratorParams(msg) => {
                write!(f, "invalid generator parameters: {msg}")
            }
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::Decode(msg) => write!(f, "binary graph decode error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 10,
            num_nodes: 5,
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains('5'));

        let e = GraphError::Parse {
            line: 3,
            message: "expected two fields".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::InvalidGeneratorParams("m > n".into());
        assert!(e.to_string().contains("m > n"));

        assert!(GraphError::EmptyGraph.to_string().contains("non-empty"));
    }

    #[test]
    fn io_error_is_wrapped_and_sourced() {
        let io_err = io::Error::new(io::ErrorKind::NotFound, "missing");
        let e: GraphError = io_err.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
