//! Small regular graph families with hand-checkable SimRank values.
//!
//! These are used throughout the test suites: on a star, a complete graph or a
//! cycle, the SimRank matrix can be derived in closed form (or at least
//! reasoned about), which provides ground truth independent of any of the
//! algorithms under test.

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::NodeId;

/// Complete directed graph on `n` nodes (every ordered pair except self-loops).
pub fn complete(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_mul(n.saturating_sub(1)));
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            if u != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Star graph: leaves `1..n` all point at the hub `0`.
///
/// If `bidirectional` is true the hub also points back at every leaf (the
/// undirected star). In the directed star all leaves have identical
/// in-neighborhood structure, so `S(i, j) = c` for distinct leaves `i, j`
/// after one SimRank iteration... in fact exactly `c` because both walk
/// straight to the hub and meet at step 1 with probability `c`.
pub fn star(n: usize, bidirectional: bool) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    for leaf in 1..n as NodeId {
        b.add_edge(leaf, 0);
        if bidirectional {
            b.add_edge(0, leaf);
        }
    }
    b.build()
}

/// Directed cycle `0 → 1 → … → n-1 → 0`.
pub fn cycle(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n);
    if n > 1 {
        for u in 0..n as NodeId {
            b.add_edge(u, (u + 1) % n as NodeId);
        }
    }
    b.build()
}

/// Directed path `0 → 1 → … → n-1`.
pub fn path(n: usize) -> DiGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for u in 0..n.saturating_sub(1) as NodeId {
        b.add_edge(u, u + 1);
    }
    b.build()
}

/// Undirected `rows × cols` grid (4-neighborhood), both edge directions
/// materialised. Node `(r, c)` has index `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> DiGraph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 4 * n).symmetric(true);
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as NodeId;
            if c + 1 < cols {
                b.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols as NodeId);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = complete(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 20);
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 4);
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn complete_trivial_sizes() {
        assert_eq!(complete(0).num_nodes(), 0);
        assert_eq!(complete(1).num_edges(), 0);
    }

    #[test]
    fn directed_star_structure() {
        let g = star(5, false);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.in_degree(0), 4);
        assert_eq!(g.out_degree(0), 0);
        for leaf in 1..5u32 {
            assert_eq!(g.in_degree(leaf), 0);
            assert_eq!(g.out_degree(leaf), 1);
        }
    }

    #[test]
    fn bidirectional_star_structure() {
        let g = star(4, true);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.in_degree(0), 3);
        assert_eq!(g.out_degree(0), 3);
        for leaf in 1..4u32 {
            assert_eq!(g.in_degree(leaf), 1);
        }
    }

    #[test]
    fn cycle_structure() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 1);
            assert_eq!(g.out_degree(v), 1);
        }
        assert!(g.has_edge(5, 0));
        assert_eq!(cycle(1).num_edges(), 0);
        assert_eq!(cycle(0).num_nodes(), 0);
    }

    #[test]
    fn path_structure() {
        let g = path(4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(0).num_nodes(), 0);
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // Undirected edges: horizontal 3*3 + vertical 2*4 = 17, doubled = 34.
        assert_eq!(g.num_edges(), 34);
        // Corner has degree 2, interior node degree 4.
        assert_eq!(g.in_degree(0), 2);
        // Node (row 1, col 1) of the 3x4 grid in row-major order.
        let interior = (4 + 1) as NodeId;
        assert_eq!(g.in_degree(interior), 4);
        // Symmetric.
        for (u, v) in g.iter_edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn grid_degenerate_shapes() {
        assert_eq!(grid(1, 1).num_edges(), 0);
        let line = grid(1, 5);
        assert_eq!(line.num_edges(), 8);
        assert_eq!(grid(0, 7).num_nodes(), 0);
    }
}
