//! Scale-free (power-law) graph generators.
//!
//! The accuracy/efficiency behaviour the ExactSim paper reports on real graphs
//! is driven by their scale-free structure: the Personalized PageRank vector of
//! a node on such graphs follows a power law (the paper cites Bahmani et al.),
//! which is what makes the `‖π_i‖²` sampling optimisation (Lemma 3) and
//! PRSim's average-case bound effective. The generators here reproduce that
//! structure with controllable node count, average degree and skew.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::NodeId;

/// Barabási–Albert preferential attachment.
///
/// Starts from a small seed clique of `m_attach` nodes and attaches every new
/// node to `m_attach` existing nodes chosen proportionally to their current
/// degree. `undirected = true` symmetrises each attachment edge (this is the
/// stand-in used for the co-authorship datasets GQ/HT/HP/DB); with
/// `undirected = false` the new node points at the chosen targets, producing a
/// citation-style directed graph with power-law in-degrees (stand-in for
/// WV/IC/IT/TW).
pub fn barabasi_albert(
    n: usize,
    m_attach: usize,
    undirected: bool,
    seed: u64,
) -> Result<DiGraph, GraphError> {
    if m_attach == 0 {
        return Err(GraphError::InvalidGeneratorParams(
            "attachment degree m_attach must be >= 1".into(),
        ));
    }
    if n < m_attach + 1 {
        return Err(GraphError::InvalidGeneratorParams(format!(
            "need at least m_attach+1 = {} nodes, got {n}",
            m_attach + 1
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, n * m_attach * 2).symmetric(undirected);

    // `attachment_pool` holds one entry per edge endpoint, so sampling a
    // uniform element of the pool samples nodes proportionally to degree.
    let mut attachment_pool: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);

    // Seed clique over the first m_attach + 1 nodes.
    let seed_nodes = m_attach + 1;
    for u in 0..seed_nodes as NodeId {
        for v in 0..seed_nodes as NodeId {
            if u < v {
                builder.add_edge(u, v);
                attachment_pool.push(u);
                attachment_pool.push(v);
            }
        }
    }

    let mut chosen: Vec<NodeId> = Vec::with_capacity(m_attach);
    for new in seed_nodes..n {
        let new = new as NodeId;
        chosen.clear();
        // Sample m_attach distinct targets by preferential attachment.
        let mut guard = 0usize;
        while chosen.len() < m_attach {
            let pick = attachment_pool[rng.gen_range(0..attachment_pool.len())];
            if !chosen.contains(&pick) {
                chosen.push(pick);
            }
            guard += 1;
            if guard > 100 * m_attach {
                // Extremely unlikely; fall back to uniform distinct picks.
                let fallback = rng.gen_range(0..new);
                if !chosen.contains(&fallback) {
                    chosen.push(fallback);
                }
            }
        }
        for &t in &chosen {
            builder.add_edge(new, t);
            attachment_pool.push(new);
            attachment_pool.push(t);
        }
    }
    Ok(builder.build())
}

/// Parameters for [`power_law_digraph`].
#[derive(Clone, Copy, Debug)]
pub struct PowerLawConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of directed edges (achieved approximately).
    pub edges: usize,
    /// Power-law exponent of the in-degree distribution (typically 2.0–3.0;
    /// smaller means more skew / heavier hubs).
    pub gamma_in: f64,
    /// Power-law exponent of the out-degree distribution.
    pub gamma_out: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            nodes: 10_000,
            edges: 50_000,
            gamma_in: 2.2,
            gamma_out: 2.5,
            seed: 0,
        }
    }
}

/// Directed configuration-model graph with power-law in- and out-degree
/// sequences.
///
/// Each node draws an in-weight and an out-weight from a Zipf-like
/// distribution with the configured exponents; edges are then created by
/// sampling source nodes proportionally to out-weight and target nodes
/// proportionally to in-weight (a Chung–Lu style construction). Self-loops and
/// duplicates are dropped, so the realised edge count is slightly below the
/// target — the generator tops up with additional samples until it reaches at
/// least 95% of the requested edges or exhausts its retry budget.
pub fn power_law_digraph(config: PowerLawConfig) -> Result<DiGraph, GraphError> {
    let PowerLawConfig {
        nodes: n,
        edges: m,
        gamma_in,
        gamma_out,
        seed,
    } = config;
    if n == 0 {
        return Ok(GraphBuilder::new(0).build());
    }
    if gamma_in <= 1.0 || gamma_out <= 1.0 {
        return Err(GraphError::InvalidGeneratorParams(
            "power-law exponents must be > 1".into(),
        ));
    }
    if m > n.saturating_mul(n.saturating_sub(1)) {
        return Err(GraphError::InvalidGeneratorParams(format!(
            "requested {m} edges but only {} ordered pairs exist",
            n * (n.saturating_sub(1))
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // Zipf-like weights: node ranked r gets weight (r+1)^(-1/(gamma-1)).
    // A random permutation decouples in-rank from out-rank so hubs for
    // in-degree are not automatically hubs for out-degree.
    let mut in_rank: Vec<usize> = (0..n).collect();
    let mut out_rank: Vec<usize> = (0..n).collect();
    shuffle(&mut in_rank, &mut rng);
    shuffle(&mut out_rank, &mut rng);

    let in_alpha = 1.0 / (gamma_in - 1.0);
    let out_alpha = 1.0 / (gamma_out - 1.0);
    let mut in_weights = vec![0.0f64; n];
    let mut out_weights = vec![0.0f64; n];
    for r in 0..n {
        in_weights[in_rank[r]] = ((r + 1) as f64).powf(-in_alpha);
        out_weights[out_rank[r]] = ((r + 1) as f64).powf(-out_alpha);
    }
    let in_sampler = AliasTable::new(&in_weights);
    let out_sampler = AliasTable::new(&out_weights);

    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut added = 0usize;
    let budget = m.saturating_mul(20).max(1000);
    let mut attempts = 0usize;
    while added < m && attempts < budget {
        attempts += 1;
        let u = out_sampler.sample(&mut rng) as NodeId;
        let v = in_sampler.sample(&mut rng) as NodeId;
        if u == v {
            continue;
        }
        if seen.insert((u, v)) {
            builder.add_edge(u, v);
            added += 1;
        }
    }
    Ok(builder.build())
}

/// Fisher–Yates shuffle with the supplied RNG.
fn shuffle(xs: &mut [usize], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias table needs positive total weight");
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        AliasTable { prob, alias }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ba_undirected_is_symmetric_and_connected_enough() {
        let g = barabasi_albert(200, 3, true, 1).unwrap();
        assert_eq!(g.num_nodes(), 200);
        for (u, v) in g.iter_edges() {
            assert!(g.has_edge(v, u));
        }
        // Every non-seed node attaches to 3 targets; undirected doubling.
        assert!(g.num_edges() >= 2 * 3 * (200 - 4));
        // No isolated nodes in BA.
        for v in g.nodes() {
            assert!(g.in_degree(v) + g.out_degree(v) > 0);
        }
    }

    #[test]
    fn ba_directed_has_no_dangling_out_nodes_beyond_seed() {
        let g = barabasi_albert(100, 2, false, 9).unwrap();
        // Directed BA: each new node has out-degree >= 2.
        for v in 3..100u32 {
            assert!(g.out_degree(v) >= 2, "node {v} has out-degree < m_attach");
        }
    }

    #[test]
    fn ba_is_deterministic_per_seed() {
        let a = barabasi_albert(150, 2, false, 5).unwrap();
        let b = barabasi_albert(150, 2, false, 5).unwrap();
        assert_eq!(
            a.iter_edges().collect::<Vec<_>>(),
            b.iter_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn ba_produces_skewed_degrees() {
        let g = barabasi_albert(1000, 2, false, 3).unwrap();
        let max_in = g.max_in_degree();
        let avg = g.average_degree();
        assert!(
            max_in as f64 > 5.0 * avg,
            "expected a hub: max_in={max_in}, avg={avg}"
        );
    }

    #[test]
    fn ba_rejects_bad_parameters() {
        assert!(barabasi_albert(5, 0, false, 1).is_err());
        assert!(barabasi_albert(2, 3, false, 1).is_err());
    }

    #[test]
    fn power_law_hits_requested_size_approximately() {
        let cfg = PowerLawConfig {
            nodes: 2000,
            edges: 10_000,
            seed: 17,
            ..Default::default()
        };
        let g = power_law_digraph(cfg).unwrap();
        assert_eq!(g.num_nodes(), 2000);
        assert!(
            g.num_edges() as f64 >= 0.9 * 10_000.0,
            "only {} edges generated",
            g.num_edges()
        );
        for v in g.nodes() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn power_law_in_degrees_are_heavy_tailed() {
        let cfg = PowerLawConfig {
            nodes: 3000,
            edges: 15_000,
            gamma_in: 2.0,
            gamma_out: 2.5,
            seed: 23,
        };
        let g = power_law_digraph(cfg).unwrap();
        let max_in = g.max_in_degree() as f64;
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            max_in > 10.0 * avg,
            "expected heavy tail: max_in={max_in}, avg={avg}"
        );
    }

    #[test]
    fn power_law_is_deterministic_per_seed() {
        let cfg = PowerLawConfig {
            nodes: 500,
            edges: 2000,
            seed: 99,
            ..Default::default()
        };
        let a = power_law_digraph(cfg).unwrap();
        let b = power_law_digraph(cfg).unwrap();
        assert_eq!(
            a.iter_edges().collect::<Vec<_>>(),
            b.iter_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn power_law_rejects_bad_exponents() {
        let cfg = PowerLawConfig {
            gamma_in: 0.9,
            ..Default::default()
        };
        assert!(power_law_digraph(cfg).is_err());
    }

    #[test]
    fn power_law_empty_graph() {
        let cfg = PowerLawConfig {
            nodes: 0,
            edges: 0,
            ..Default::default()
        };
        let g = power_law_digraph(cfg).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn alias_table_sampling_is_roughly_proportional() {
        let weights = vec![1.0, 2.0, 7.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        let trials = 50_000;
        for _ in 0..trials {
            counts[table.sample(&mut rng)] += 1;
        }
        let f2 = counts[2] as f64 / trials as f64;
        assert!((f2 - 0.7).abs() < 0.02, "hub frequency {f2} should be ~0.7");
    }
}
