//! Deterministic synthetic graph generators.
//!
//! The ExactSim paper evaluates on eight SNAP/LAW graphs (Table 2). Those
//! datasets cannot be redistributed here, so the benchmark harness uses
//! synthetic stand-ins produced by these generators: every generator takes an
//! explicit RNG seed and produces the same graph for the same parameters on
//! every run, which keeps the experiments reproducible.
//!
//! Two families matter most for reproducing the paper's behaviour:
//!
//! * the **scale-free generators** ([`barabasi_albert`], [`power_law_digraph`])
//!   whose Personalized-PageRank vectors follow a power law — the property the
//!   paper's Lemma 3 analysis (and PRSim's sub-linear bound) relies on;
//! * the **regular families** ([`complete`], [`star`], [`cycle`], [`path`],
//!   [`grid`]) used in unit and property tests where SimRank values can be
//!   reasoned about by hand.

mod erdos_renyi;
mod preferential;
mod regular;
mod sbm;

pub use erdos_renyi::{erdos_renyi_directed, erdos_renyi_undirected, gnm_directed};
pub use preferential::{barabasi_albert, power_law_digraph, PowerLawConfig};
pub use regular::{complete, cycle, grid, path, star};
pub use sbm::{stochastic_block_model, SbmConfig};
