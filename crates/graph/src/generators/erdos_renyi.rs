//! Erdős–Rényi style random graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::NodeId;

/// Directed `G(n, p)`: every ordered pair `(u, v)`, `u ≠ v`, is an edge
/// independently with probability `p`.
///
/// Uses geometric skipping so the cost is `O(n + m)` rather than `O(n²)` for
/// small `p`.
pub fn erdos_renyi_directed(n: usize, p: f64, seed: u64) -> Result<DiGraph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidGeneratorParams(format!(
            "edge probability must be in [0,1], got {p}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n);
    if n == 0 || p == 0.0 {
        return Ok(builder.build());
    }
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                if u != v {
                    builder.add_edge(u, v);
                }
            }
        }
        return Ok(builder.build());
    }
    // Geometric skipping over the n*(n-1) ordered non-diagonal pairs.
    let total_pairs = (n as u128) * (n as u128 - 1);
    let log_q = (1.0 - p).ln();
    let mut pos: u128 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as u128 + 1;
        pos += skip;
        if pos > total_pairs {
            break;
        }
        let linear = pos - 1;
        let u = (linear / (n as u128 - 1)) as NodeId;
        let mut v = (linear % (n as u128 - 1)) as NodeId;
        if v >= u {
            v += 1; // skip the diagonal
        }
        builder.add_edge(u, v);
    }
    Ok(builder.build())
}

/// Undirected `G(n, p)`: every unordered pair is an (undirected) edge with
/// probability `p`; both directions are materialised.
pub fn erdos_renyi_undirected(n: usize, p: f64, seed: u64) -> Result<DiGraph, GraphError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidGeneratorParams(format!(
            "edge probability must be in [0,1], got {p}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n).symmetric(true);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen::<f64>() < p {
                builder.add_edge(u, v);
            }
        }
    }
    Ok(builder.build())
}

/// Directed `G(n, m)`: exactly `m` distinct directed edges (no self-loops)
/// chosen uniformly at random.
pub fn gnm_directed(n: usize, m: usize, seed: u64) -> Result<DiGraph, GraphError> {
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    if m > max_edges {
        return Err(GraphError::InvalidGeneratorParams(format!(
            "requested {m} edges but only {max_edges} ordered pairs exist for n={n}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut added = 0usize;
    while added < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v {
            continue;
        }
        if seen.insert((u, v)) {
            builder.add_edge(u, v);
            added += 1;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_directed_is_deterministic_per_seed() {
        let a = erdos_renyi_directed(100, 0.05, 7).unwrap();
        let b = erdos_renyi_directed(100, 0.05, 7).unwrap();
        let c = erdos_renyi_directed(100, 0.05, 8).unwrap();
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.iter_edges().collect();
        let eb: Vec<_> = b.iter_edges().collect();
        assert_eq!(ea, eb);
        // Different seed should (overwhelmingly) produce a different graph.
        assert_ne!(
            ea,
            c.iter_edges().collect::<Vec<_>>(),
            "different seeds should differ"
        );
    }

    #[test]
    fn gnp_edge_count_is_near_expectation() {
        let n = 200;
        let p = 0.05;
        let g = erdos_renyi_directed(n, p, 42).unwrap();
        let expected = (n * (n - 1)) as f64 * p;
        let actual = g.num_edges() as f64;
        assert!(
            (actual - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "edge count {actual} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let empty = erdos_renyi_directed(10, 0.0, 1).unwrap();
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi_directed(6, 1.0, 1).unwrap();
        assert_eq!(full.num_edges(), 6 * 5);
        let nothing = erdos_renyi_directed(0, 0.5, 1).unwrap();
        assert!(nothing.is_empty());
    }

    #[test]
    fn gnp_rejects_bad_probability() {
        assert!(erdos_renyi_directed(10, 1.5, 1).is_err());
        assert!(erdos_renyi_directed(10, -0.1, 1).is_err());
    }

    #[test]
    fn gnp_has_no_self_loops() {
        let g = erdos_renyi_directed(50, 0.2, 3).unwrap();
        for v in g.nodes() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn undirected_gnp_is_symmetric() {
        let g = erdos_renyi_undirected(60, 0.1, 11).unwrap();
        for (u, v) in g.iter_edges() {
            assert!(g.has_edge(v, u), "missing reverse edge {v}->{u}");
        }
        assert_eq!(g.num_edges() % 2, 0);
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = gnm_directed(40, 123, 5).unwrap();
        assert_eq!(g.num_edges(), 123);
        for v in g.nodes() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn gnm_rejects_impossible_m() {
        assert!(gnm_directed(3, 7, 1).is_err());
        assert!(gnm_directed(3, 6, 1).is_ok());
    }
}
