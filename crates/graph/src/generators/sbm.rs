//! Stochastic block model generator.
//!
//! SimRank is a *structural similarity*: nodes in the same densely connected
//! community should score higher against each other than against nodes in
//! other communities. The stochastic block model produces exactly that
//! structure with a controllable signal strength, which makes it the workload
//! for the "top-k recommendation" example and for sanity tests that top-k
//! results respect community boundaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::builder::GraphBuilder;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::NodeId;

/// Parameters for [`stochastic_block_model`].
#[derive(Clone, Debug)]
pub struct SbmConfig {
    /// Size of each community (block); the graph has `block_sizes.sum()` nodes.
    pub block_sizes: Vec<usize>,
    /// Probability of an (undirected) edge within a community.
    pub p_within: f64,
    /// Probability of an (undirected) edge across communities.
    pub p_between: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SbmConfig {
    fn default() -> Self {
        SbmConfig {
            block_sizes: vec![50, 50, 50],
            p_within: 0.2,
            p_between: 0.01,
            seed: 0,
        }
    }
}

/// The generated graph plus the community assignment of every node.
#[derive(Clone, Debug)]
pub struct SbmGraph {
    /// The undirected (symmetrised) graph.
    pub graph: DiGraph,
    /// `community[v]` is the block index of node `v`.
    pub community: Vec<usize>,
}

/// Generates an undirected stochastic block model graph (both edge directions
/// materialised).
pub fn stochastic_block_model(config: SbmConfig) -> Result<SbmGraph, GraphError> {
    for &p in &[config.p_within, config.p_between] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidGeneratorParams(format!(
                "probabilities must be in [0,1], got {p}"
            )));
        }
    }
    let n: usize = config.block_sizes.iter().sum();
    let mut community = Vec::with_capacity(n);
    for (block, &size) in config.block_sizes.iter().enumerate() {
        community.extend(std::iter::repeat_n(block, size));
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::new(n).symmetric(true);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if community[u] == community[v] {
                config.p_within
            } else {
                config.p_between
            };
            if rng.gen::<f64>() < p {
                builder.add_edge(u as NodeId, v as NodeId);
            }
        }
    }
    Ok(SbmGraph {
        graph: builder.build(),
        community,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_sizes_and_assignment() {
        let cfg = SbmConfig {
            block_sizes: vec![10, 20, 30],
            ..Default::default()
        };
        let sbm = stochastic_block_model(cfg).unwrap();
        assert_eq!(sbm.graph.num_nodes(), 60);
        assert_eq!(sbm.community.len(), 60);
        assert_eq!(sbm.community[0], 0);
        assert_eq!(sbm.community[15], 1);
        assert_eq!(sbm.community[59], 2);
    }

    #[test]
    fn within_block_density_exceeds_between_block_density() {
        let cfg = SbmConfig {
            block_sizes: vec![40, 40],
            p_within: 0.3,
            p_between: 0.02,
            seed: 7,
        };
        let sbm = stochastic_block_model(cfg).unwrap();
        let g = &sbm.graph;
        let mut within = 0usize;
        let mut between = 0usize;
        for (u, v) in g.iter_edges() {
            if sbm.community[u as usize] == sbm.community[v as usize] {
                within += 1;
            } else {
                between += 1;
            }
        }
        // Within pairs: 2 * C(40,2) = 1560 ordered symmetric edges expected ~ 0.3.
        // Between pairs: 40*40 = 1600 with ~0.02.
        assert!(
            within > 4 * between,
            "within={within} between={between} should be strongly separated"
        );
    }

    #[test]
    fn graph_is_symmetric() {
        let sbm = stochastic_block_model(SbmConfig::default()).unwrap();
        for (u, v) in sbm.graph.iter_edges() {
            assert!(sbm.graph.has_edge(v, u));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = stochastic_block_model(SbmConfig::default()).unwrap();
        let b = stochastic_block_model(SbmConfig::default()).unwrap();
        assert_eq!(
            a.graph.iter_edges().collect::<Vec<_>>(),
            b.graph.iter_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rejects_bad_probabilities() {
        let cfg = SbmConfig {
            p_within: 1.2,
            ..Default::default()
        };
        assert!(stochastic_block_model(cfg).is_err());
    }

    #[test]
    fn empty_model() {
        let cfg = SbmConfig {
            block_sizes: vec![],
            ..Default::default()
        };
        let sbm = stochastic_block_model(cfg).unwrap();
        assert!(sbm.graph.is_empty());
        assert!(sbm.community.is_empty());
    }
}
