//! Dense vector helpers (`Vec<f64>` indexed by node id).

/// Returns the all-zero vector of length `n`.
pub fn zero_vector(n: usize) -> Vec<f64> {
    vec![0.0; n]
}

/// Returns the one-hot vector `e_i` of length `n`.
///
/// # Panics
/// Panics if `i >= n`.
pub fn unit_vector(n: usize, i: u32) -> Vec<f64> {
    let mut v = vec![0.0; n];
    v[i as usize] = 1.0;
    v
}

/// The L1 norm `Σ |x_k|`.
pub fn l1_norm(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// The squared L2 norm `Σ x_k²` (the `‖π_i‖²` quantity of Lemma 3).
pub fn l2_norm_sq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// The dot product `Σ x_k·y_k`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot product of mismatched lengths");
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// In-place scaling `x ← a·x`.
pub fn scale(x: &mut [f64], a: f64) {
    for v in x.iter_mut() {
        *v *= a;
    }
}

/// In-place addition `y ← y + x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    assert_eq!(x.len(), y.len(), "add_assign of mismatched lengths");
    for (yk, xk) in y.iter_mut().zip(x.iter()) {
        *yk += xk;
    }
}

/// In-place `y ← y + a·x`.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    assert_eq!(x.len(), y.len(), "axpy of mismatched lengths");
    for (yk, xk) in y.iter_mut().zip(x.iter()) {
        *yk += a * xk;
    }
}

/// The L∞ distance `max_k |x_k − y_k|` — the paper's *MaxError* when `x` is an
/// estimate and `y` the ground truth.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn linf_distance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "linf_distance of mismatched lengths");
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_vector_has_single_one() {
        let e = unit_vector(4, 2);
        assert_eq!(e, vec![0.0, 0.0, 1.0, 0.0]);
        assert!((l1_norm(&e) - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn unit_vector_out_of_range_panics() {
        let _ = unit_vector(2, 5);
    }

    #[test]
    fn norms_and_dot() {
        let x = vec![3.0, -4.0];
        assert!((l1_norm(&x) - 7.0).abs() < 1e-15);
        assert!((l2_norm_sq(&x) - 25.0).abs() < 1e-15);
        let y = vec![1.0, 2.0];
        assert!((dot(&x, &y) - (3.0 - 8.0)).abs() < 1e-15);
    }

    #[test]
    fn scale_add_axpy() {
        let mut x = vec![1.0, 2.0];
        scale(&mut x, 2.0);
        assert_eq!(x, vec![2.0, 4.0]);
        let mut y = vec![1.0, 1.0];
        add_assign(&mut y, &x);
        assert_eq!(y, vec![3.0, 5.0]);
        axpy(&mut y, 0.5, &x);
        assert_eq!(y, vec![4.0, 7.0]);
    }

    #[test]
    fn linf_distance_is_max_abs_diff() {
        let x = vec![0.0, 1.0, 2.0];
        let y = vec![0.5, 1.0, -1.0];
        assert!((linf_distance(&x, &y) - 3.0).abs() < 1e-15);
        assert_eq!(linf_distance(&x, &x), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn mismatched_lengths_panic() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn zero_vector_is_zero() {
        let z = zero_vector(3);
        assert_eq!(z, vec![0.0; 3]);
    }
}
