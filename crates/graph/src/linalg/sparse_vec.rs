//! A sparse vector over node ids.

use crate::NodeId;

/// A sparse vector `x ∈ ℝⁿ` stored as parallel `(index, value)` arrays.
///
/// This is the representation used for the ℓ-hop Personalized PageRank vectors
/// `π^ℓ_i` in ExactSim's *sparse Linearization* (§3.2 of the paper, Lemma 2):
/// after pruning entries below `(1-√c)²·ε`, each vector has at most
/// `1/((1-√c)²·ε)` entries regardless of the graph size.
///
/// Entries are kept sorted by index with no duplicates and (by convention) no
/// explicit zeros; [`SparseVec::from_unsorted`] and the mutating operations
/// maintain this invariant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SparseVec {
    indices: Vec<NodeId>,
    values: Vec<f64>,
}

impl SparseVec {
    /// The empty sparse vector.
    pub fn new() -> Self {
        SparseVec::default()
    }

    /// An empty sparse vector with reserved capacity for `cap` non-zeros.
    pub fn with_capacity(cap: usize) -> Self {
        SparseVec {
            indices: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// A one-hot sparse vector `value·e_i`.
    pub fn unit(i: NodeId, value: f64) -> Self {
        SparseVec {
            indices: vec![i],
            values: vec![value],
        }
    }

    /// Builds a sparse vector from possibly unsorted, possibly duplicated
    /// `(index, value)` pairs; duplicate indices are summed, zeros dropped.
    pub fn from_unsorted(mut entries: Vec<(NodeId, f64)>) -> Self {
        let mut out = SparseVec::with_capacity(entries.len());
        out.rebuild_from_unsorted(&mut entries);
        out
    }

    /// The `clear()`-and-reuse form of [`SparseVec::from_unsorted`]: rebuilds
    /// `self` in place from `entries`, which is drained (emptied, capacity
    /// kept) so the caller can refill and reuse it without reallocating.
    ///
    /// Duplicates are accumulated in one pass over the sorted entries — each
    /// run of equal indices is summed in its post-sort order and emitted once
    /// its total is known, with exact-zero (and non-finite-comparing, i.e.
    /// NaN) totals dropped — which is bit-identical to the historical
    /// sort-merge-then-prune construction but touches each entry once.
    pub fn rebuild_from_unsorted(&mut self, entries: &mut Vec<(NodeId, f64)>) {
        self.indices.clear();
        self.values.clear();
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut run: Option<(NodeId, f64)> = None;
        for (i, v) in entries.drain(..) {
            match &mut run {
                Some((ri, rv)) if *ri == i => *rv += v,
                _ => {
                    if let Some((ri, rv)) = run.take() {
                        if rv.abs() > 0.0 {
                            self.indices.push(ri);
                            self.values.push(rv);
                        }
                    }
                    run = Some((i, v));
                }
            }
        }
        if let Some((ri, rv)) = run {
            if rv.abs() > 0.0 {
                self.indices.push(ri);
                self.values.push(rv);
            }
        }
    }

    /// Rebuilds `self` as a copy of `src` with every value scaled by `a`
    /// (reusing this vector's capacity) — the hop-vector materialisation step
    /// (`π^ℓ = (1-√c)·walk_dist`) without a fresh allocation per level.
    pub fn assign_scaled(&mut self, src: &SparseVec, a: f64) {
        self.indices.clear();
        self.values.clear();
        self.indices.extend_from_slice(&src.indices);
        self.values.extend(src.values.iter().map(|&v| v * a));
    }

    /// Builds a sparse vector from a dense slice, keeping entries with
    /// `|x_k| > threshold`.
    pub fn from_dense(dense: &[f64], threshold: f64) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (k, &v) in dense.iter().enumerate() {
            if v.abs() > threshold {
                indices.push(k as NodeId);
                values.push(v);
            }
        }
        SparseVec { indices, values }
    }

    /// Expands into a dense vector of length `n`.
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        let mut dense = vec![0.0; n];
        self.scatter_into(&mut dense);
        dense
    }

    /// Adds this vector's entries into an existing dense buffer.
    pub fn scatter_into(&self, dense: &mut [f64]) {
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            dense[i as usize] += v;
        }
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `true` iff no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterates over `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// The stored indices (sorted ascending).
    #[inline]
    pub fn indices(&self) -> &[NodeId] {
        &self.indices
    }

    /// The stored values, parallel to [`SparseVec::indices`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at index `i` (0.0 if not stored).
    pub fn get(&self, i: NodeId) -> f64 {
        match self.indices.binary_search(&i) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// The L1 norm of stored values.
    pub fn l1_norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// The sum of stored values (L1 norm for non-negative vectors such as the
    /// walk distributions used throughout the paper).
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The squared L2 norm `Σ x_k²`.
    pub fn l2_norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Largest stored value (0.0 for an empty vector).
    pub fn max_value(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// In-place scaling of all stored values.
    pub fn scale(&mut self, a: f64) {
        for v in &mut self.values {
            *v *= a;
        }
    }

    /// Removes entries with `|value| <= threshold`, returning the total mass
    /// removed (sum of the dropped values). This is exactly the sparsification
    /// step of Lemma 2.
    pub fn prune(&mut self, threshold: f64) -> f64 {
        let mut dropped = 0.0;
        let mut w = 0usize;
        for r in 0..self.indices.len() {
            if self.values[r].abs() > threshold {
                self.indices[w] = self.indices[r];
                self.values[w] = self.values[r];
                w += 1;
            } else {
                dropped += self.values[r];
            }
        }
        self.indices.truncate(w);
        self.values.truncate(w);
        dropped
    }

    /// Removes exact-zero entries.
    pub fn drop_zeros(&mut self) {
        self.prune(0.0);
    }

    /// Dot product with a dense vector.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        self.iter().map(|(i, v)| v * dense[i as usize]).sum()
    }

    /// Dot product with another sparse vector (merge join over sorted indices).
    pub fn dot_sparse(&self, other: &SparseVec) -> f64 {
        let mut acc = 0.0;
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.nnz() && b < other.nnz() {
            match self.indices[a].cmp(&other.indices[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[a] * other.values[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        acc
    }

    /// Approximate heap footprint in bytes (for Table 3 memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.indices.len() * std::mem::size_of::<NodeId>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Clears all entries, retaining allocated capacity.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Pushes an entry that must have a strictly larger index than any stored
    /// entry (used by the kernels that produce entries in sorted order).
    ///
    /// # Panics
    /// Panics (debug) if the ordering invariant would be violated.
    pub fn push_sorted(&mut self, i: NodeId, v: f64) {
        debug_assert!(self.indices.last().is_none_or(|&last| last < i));
        self.indices.push(i);
        self.values.push(v);
    }
}

impl FromIterator<(NodeId, f64)> for SparseVec {
    fn from_iter<T: IntoIterator<Item = (NodeId, f64)>>(iter: T) -> Self {
        SparseVec::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_merges_and_drops_zeros() {
        let v = SparseVec::from_unsorted(vec![(3, 1.0), (1, 2.0), (3, 0.5), (2, 0.0)]);
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.values(), &[2.0, 1.5]);
        assert_eq!(v.nnz(), 2);
        // Duplicates that cancel to exactly zero are dropped like explicit
        // zeros are.
        let w = SparseVec::from_unsorted(vec![(5, 1.0), (5, -1.0), (6, 2.0)]);
        assert_eq!(w.indices(), &[6]);
    }

    #[test]
    fn rebuild_from_unsorted_reuses_both_buffers() {
        let mut v = SparseVec::from_unsorted(vec![(0, 1.0), (9, 2.0)]);
        let mut entries = vec![(4, 0.5), (2, 1.5), (4, 0.25)];
        let cap = entries.capacity();
        v.rebuild_from_unsorted(&mut entries);
        assert_eq!(v.indices(), &[2, 4]);
        assert_eq!(v.values(), &[1.5, 0.75]);
        // The entry buffer is drained, not dropped.
        assert!(entries.is_empty());
        assert_eq!(entries.capacity(), cap);
    }

    #[test]
    fn assign_scaled_copies_and_scales() {
        let src = SparseVec::from_unsorted(vec![(1, 2.0), (7, 4.0)]);
        let mut dst = SparseVec::unit(0, 9.0);
        dst.assign_scaled(&src, 0.5);
        assert_eq!(dst.indices(), &[1, 7]);
        assert_eq!(dst.values(), &[1.0, 2.0]);
    }

    #[test]
    fn dense_round_trip() {
        let dense = vec![0.0, 0.25, 0.0, 0.75];
        let sv = SparseVec::from_dense(&dense, 0.0);
        assert_eq!(sv.nnz(), 2);
        assert_eq!(sv.to_dense(4), dense);
    }

    #[test]
    fn get_missing_is_zero() {
        let sv = SparseVec::unit(5, 2.0);
        assert_eq!(sv.get(5), 2.0);
        assert_eq!(sv.get(4), 0.0);
    }

    #[test]
    fn norms_and_sums() {
        let sv = SparseVec::from_unsorted(vec![(0, 0.5), (9, 0.5)]);
        assert!((sv.l1_norm() - 1.0).abs() < 1e-15);
        assert!((sv.sum() - 1.0).abs() < 1e-15);
        assert!((sv.l2_norm_sq() - 0.5).abs() < 1e-15);
        assert!((sv.max_value() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn prune_returns_dropped_mass_and_bounds_size() {
        let mut sv = SparseVec::from_unsorted(vec![(0, 0.6), (1, 0.05), (2, 0.3), (3, 0.05)]);
        let dropped = sv.prune(0.1);
        assert!((dropped - 0.1).abs() < 1e-15);
        assert_eq!(sv.nnz(), 2);
        assert_eq!(sv.indices(), &[0, 2]);
    }

    #[test]
    fn dot_products_agree() {
        let a = SparseVec::from_unsorted(vec![(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = SparseVec::from_unsorted(vec![(2, 0.5), (5, 1.0), (7, 9.0)]);
        let dense_b = b.to_dense(8);
        assert!((a.dot_sparse(&b) - 4.0).abs() < 1e-15);
        assert!((a.dot_dense(&dense_b) - 4.0).abs() < 1e-15);
        assert!((b.dot_sparse(&a) - 4.0).abs() < 1e-15);
    }

    #[test]
    fn scatter_accumulates() {
        let a = SparseVec::from_unsorted(vec![(1, 1.0)]);
        let mut dense = vec![0.5; 3];
        a.scatter_into(&mut dense);
        assert_eq!(dense, vec![0.5, 1.5, 0.5]);
    }

    #[test]
    fn scale_and_clear() {
        let mut sv = SparseVec::from_unsorted(vec![(1, 2.0)]);
        sv.scale(0.5);
        assert_eq!(sv.values(), &[1.0]);
        sv.clear();
        assert!(sv.is_empty());
    }

    #[test]
    fn push_sorted_maintains_order() {
        let mut sv = SparseVec::new();
        sv.push_sorted(1, 1.0);
        sv.push_sorted(4, 2.0);
        assert_eq!(sv.indices(), &[1, 4]);
    }

    #[test]
    fn collects_from_iterator() {
        let sv: SparseVec = vec![(2, 1.0), (0, 3.0)].into_iter().collect();
        assert_eq!(sv.indices(), &[0, 2]);
    }

    #[test]
    fn memory_accounting_nonzero() {
        let sv = SparseVec::from_unsorted(vec![(0, 1.0), (1, 1.0)]);
        assert!(sv.memory_bytes() >= 2 * (4 + 8));
    }
}
