//! Vector and transition-matrix kernels.
//!
//! All Linearization-style SimRank algorithms (ParSim, Linearization, PRSim's
//! analysis, and ExactSim itself) are built from two primitives over the
//! reverse transition matrix `P` (`P(i,j) = 1/din(j)` iff edge `i → j` exists):
//!
//! * `P · x` — pushes mass from each node to its in-neighbors, weighted by
//!   `1/din`: this is one step of the backward random walk in distribution form
//!   (used to compute the ℓ-hop Personalized PageRank vectors `π^ℓ_i`);
//! * `Pᵀ · x` — averages over in-neighbors: this is the accumulation step of
//!   equation (8)/(9) of the paper (`s^ℓ = √c·Pᵀ·s^{ℓ-1} + …`).
//!
//! Both dense (`Vec<f64>`) and sparse ([`SparseVec`]) variants are provided,
//! the sparse ones backed by a reusable dense scratch space ([`Workspace`]) so
//! that repeated calls allocate nothing.

mod dense;
mod sparse_vec;
mod transition;

pub use dense::{
    add_assign, axpy, dot, l1_norm, l2_norm_sq, linf_distance, scale, unit_vector, zero_vector,
};
pub use sparse_vec::SparseVec;
pub use transition::{
    p_multiply, p_multiply_rows, p_multiply_sparse, p_multiply_sparse_into, pt_multiply,
    pt_multiply_rows, pt_multiply_sparse, pt_multiply_sparse_into, Workspace,
};
