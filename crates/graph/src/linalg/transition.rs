//! The reverse transition operator `P` and its transpose.
//!
//! With `P(i, j) = 1/din(j)` for `i ∈ I(j)` (edge `i → j` exists):
//!
//! * `(P·x)(i) = Σ_{j ∈ O(i)} x(j) / din(j)` — node `i` *receives* from every
//!   node `j` it points at, i.e. mass flows backwards along edges. Applying
//!   `√c·P` repeatedly to `e_i` yields the ℓ-hop walk distributions of the
//!   √c-walk started at `i` (up to the `(1-√c)` stop factor).
//! * `(Pᵀ·x)(i) = (1/din(i)) Σ_{j ∈ I(i)} x(j)` — averaging over in-neighbors,
//!   the accumulation step of the Linearization recurrence (eq. 6/9).
//!
//! Nodes with `din = 0` contribute nothing under `P` and receive nothing under
//! `Pᵀ`, matching the convention that a √c-walk stuck at such a node simply
//! stops (the paper's Algorithm 3 handles this case explicitly with
//! `D(k,k) = 1`).

use crate::access::NeighborAccess;
use crate::linalg::sparse_vec::SparseVec;
use crate::NodeId;

/// Dense `y ← P·x`. `x` and `y` must have length `n`; `y` is overwritten.
///
/// # Panics
/// Panics if `x` or `y` has length different from `graph.num_nodes()`.
pub fn p_multiply<G: NeighborAccess>(graph: &G, x: &[f64], y: &mut [f64]) {
    let n = graph.num_nodes();
    assert_eq!(x.len(), n, "input vector length must equal num_nodes");
    assert_eq!(y.len(), n, "output vector length must equal num_nodes");
    // (P·x)(i) = Σ_{j ∈ O(i)} x(j)/din(j). Precomputing x(j)/din(j) once per j
    // and gathering over out-neighbors keeps the inner loop to one multiply-add.
    // We instead scatter from each j to its in-neighbors, which touches each
    // edge exactly once and avoids recomputing 1/din(j) per edge.
    for v in y.iter_mut() {
        *v = 0.0;
    }
    for j in 0..n as NodeId {
        let xj = x[j as usize];
        if xj == 0.0 {
            continue;
        }
        let din = graph.in_degree(j);
        if din == 0 {
            continue;
        }
        let share = xj / din as f64;
        for &i in graph.in_neighbors(j).iter() {
            y[i as usize] += share;
        }
    }
}

/// Dense `y ← Pᵀ·x`. `x` and `y` must have length `n`; `y` is overwritten.
///
/// # Panics
/// Panics if `x` or `y` has length different from `graph.num_nodes()`.
pub fn pt_multiply<G: NeighborAccess>(graph: &G, x: &[f64], y: &mut [f64]) {
    let n = graph.num_nodes();
    assert_eq!(x.len(), n, "input vector length must equal num_nodes");
    assert_eq!(y.len(), n, "output vector length must equal num_nodes");
    for i in 0..n as NodeId {
        let din = graph.in_degree(i);
        if din == 0 {
            y[i as usize] = 0.0;
            continue;
        }
        let mut acc = 0.0;
        for &j in graph.in_neighbors(i).iter() {
            acc += x[j as usize];
        }
        y[i as usize] = acc / din as f64;
    }
}

/// Reusable dense scratch space for the sparse kernels: the epoch-stamped
/// sparse accumulator every Scratch-based kernel in this workspace builds on.
///
/// The sparse kernels accumulate into a dense `f64` buffer plus a "touched"
/// list (the classic sparse-accumulator pattern), so a sequence of
/// sparse-matrix × sparse-vector products performs no per-call allocation
/// beyond the output vector. Slots are *epoch-stamped* rather than zeroed on
/// drain: a slot belongs to the current accumulation iff its stamp equals the
/// current epoch, so resetting the workspace is `O(touched)` regardless of
/// `n`, and a value that cancels to exactly `0.0` cannot re-enter the touched
/// list twice.
///
/// Draining always visits the touched indices in **sorted order** — that is
/// the determinism contract: float accumulations performed through a
/// workspace reduce in ascending-index order, exactly like the `BTreeMap`
/// accumulators these workspaces replaced, so results are bit-identical
/// between the two representations.
#[derive(Clone, Debug)]
pub struct Workspace {
    accum: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<NodeId>,
}

impl Workspace {
    /// Creates a workspace for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Workspace {
            accum: vec![0.0; n],
            stamp: vec![0; n],
            epoch: 1,
            touched: Vec::new(),
        }
    }

    /// Number of nodes this workspace supports.
    pub fn len(&self) -> usize {
        self.accum.len()
    }

    /// `true` iff the workspace covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.accum.is_empty()
    }

    /// Number of distinct indices touched since the last drain/reset.
    pub fn num_touched(&self) -> usize {
        self.touched.len()
    }

    /// Adds `v` into slot `i`. The first touch of a slot in the current
    /// epoch *assigns* (it does not read the stale value), so no zeroing pass
    /// is ever needed.
    #[inline]
    pub fn add(&mut self, i: NodeId, v: f64) {
        let idx = i as usize;
        if self.stamp[idx] == self.epoch {
            self.accum[idx] += v;
        } else {
            self.stamp[idx] = self.epoch;
            self.accum[idx] = v;
            self.touched.push(i);
        }
    }

    /// Current value of slot `i` (`0.0` if untouched this epoch).
    pub fn value(&self, i: NodeId) -> f64 {
        let idx = i as usize;
        if self.stamp[idx] == self.epoch {
            self.accum[idx]
        } else {
            0.0
        }
    }

    /// Discards any accumulated entries and starts a fresh epoch.
    pub fn reset(&mut self) {
        self.touched.clear();
        if self.epoch == u32::MAX {
            // Stamp wrap-around: invalidate everything explicitly once every
            // ~4 billion epochs instead of letting stale stamps collide.
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Visits every touched `(index, value)` pair in ascending index order —
    /// including entries that cancelled to `0.0` — then resets the workspace.
    /// This is the primitive the deterministic kernels reduce through.
    pub fn drain_sorted(&mut self, mut f: impl FnMut(NodeId, f64)) {
        self.touched.sort_unstable();
        for idx in 0..self.touched.len() {
            let i = self.touched[idx];
            f(i, self.accum[i as usize]);
        }
        self.reset();
    }

    /// Drains the accumulated entries into `out` (cleared first) in sorted
    /// index order and resets the workspace for reuse. Entries that cancelled
    /// to exactly 0.0 are kept out of the result.
    pub fn drain_into(&mut self, out: &mut SparseVec) {
        out.clear();
        self.touched.sort_unstable();
        for idx in 0..self.touched.len() {
            let i = self.touched[idx];
            let v = self.accum[i as usize];
            if v != 0.0 {
                out.push_sorted(i, v);
            }
        }
        self.reset();
    }

    /// Drains the accumulated entries into a freshly allocated sorted
    /// [`SparseVec`] and resets the workspace for reuse.
    fn drain_sparse(&mut self) -> SparseVec {
        let mut out = SparseVec::with_capacity(self.touched.len());
        self.drain_into(&mut out);
        out
    }
}

/// Sparse `P·x` using a reusable [`Workspace`]; returns a sorted [`SparseVec`].
///
/// Cost is `O(Σ_{j ∈ supp(x)} din(j) + |out| log |out|)` — independent of `n`,
/// which is what makes the sparse Linearization of §3.2 scale.
pub fn p_multiply_sparse<G: NeighborAccess>(
    graph: &G,
    x: &SparseVec,
    ws: &mut Workspace,
) -> SparseVec {
    accumulate_p_multiply(graph, x, ws);
    ws.drain_sparse()
}

/// Sparse `P·x` into a caller-owned output vector (cleared first): the
/// allocation-free variant the Scratch-based kernels use. `out` must be a
/// different vector from `x`.
pub fn p_multiply_sparse_into<G: NeighborAccess>(
    graph: &G,
    x: &SparseVec,
    ws: &mut Workspace,
    out: &mut SparseVec,
) {
    accumulate_p_multiply(graph, x, ws);
    ws.drain_into(out);
}

fn accumulate_p_multiply<G: NeighborAccess>(graph: &G, x: &SparseVec, ws: &mut Workspace) {
    debug_assert_eq!(ws.len(), graph.num_nodes());
    for (j, xj) in x.iter() {
        let din = graph.in_degree(j);
        if din == 0 || xj == 0.0 {
            continue;
        }
        let share = xj / din as f64;
        for &i in graph.in_neighbors(j).iter() {
            ws.add(i, share);
        }
    }
}

/// Sparse `Pᵀ·x` using a reusable [`Workspace`]; returns a sorted [`SparseVec`].
///
/// For every node `j` in the support of `x`, its contribution `x(j)` is spread
/// to each out-neighbor `i` of `j` with weight `1/din(i)`.
pub fn pt_multiply_sparse<G: NeighborAccess>(
    graph: &G,
    x: &SparseVec,
    ws: &mut Workspace,
) -> SparseVec {
    accumulate_pt_multiply(graph, x, ws);
    ws.drain_sparse()
}

/// Sparse `Pᵀ·x` into a caller-owned output vector (cleared first). `out`
/// must be a different vector from `x`.
pub fn pt_multiply_sparse_into<G: NeighborAccess>(
    graph: &G,
    x: &SparseVec,
    ws: &mut Workspace,
    out: &mut SparseVec,
) {
    accumulate_pt_multiply(graph, x, ws);
    ws.drain_into(out);
}

fn accumulate_pt_multiply<G: NeighborAccess>(graph: &G, x: &SparseVec, ws: &mut Workspace) {
    debug_assert_eq!(ws.len(), graph.num_nodes());
    for (j, xj) in x.iter() {
        if xj == 0.0 {
            continue;
        }
        for &i in graph.out_neighbors(j).iter() {
            let din = graph.in_degree(i);
            debug_assert!(din > 0, "out-neighbor must have at least one in-edge");
            ws.add(i, xj / din as f64);
        }
    }
}

/// Dense `P·x` restricted to the output rows `rows`, in *gather* form:
/// `out[i - rows.start] = Σ_{j ∈ O(i)} x(j)/din(j)`.
///
/// Because out-neighbor lists are sorted ascending, each output slot
/// accumulates its terms in exactly the same ascending-`j` order as the
/// scatter-form [`p_multiply`] — so a row-sharded parallel multiply built on
/// this kernel is bit-identical to the sequential one for any shard split.
///
/// # Panics
/// Panics if `x` is not `num_nodes` long, `rows` is out of range, or `out`
/// does not have exactly `rows.len()` elements.
pub fn p_multiply_rows<G: NeighborAccess>(
    graph: &G,
    x: &[f64],
    rows: std::ops::Range<usize>,
    out: &mut [f64],
) {
    let n = graph.num_nodes();
    assert_eq!(x.len(), n, "input vector length must equal num_nodes");
    assert!(rows.end <= n, "row range out of bounds");
    assert_eq!(
        out.len(),
        rows.len(),
        "output slice must match the row range"
    );
    for (slot, i) in out.iter_mut().zip(rows) {
        let mut acc = 0.0;
        for &j in graph.out_neighbors(i as NodeId).iter() {
            let xj = x[j as usize];
            if xj == 0.0 {
                continue;
            }
            // j ∈ O(i) implies din(j) ≥ 1 (the edge i → j ends at j).
            acc += xj / graph.in_degree(j) as f64;
        }
        *slot = acc;
    }
}

/// Dense `Pᵀ·x` restricted to the output rows `rows` — the per-row loop of
/// [`pt_multiply`], exposed so callers can shard the output deterministically
/// across threads.
///
/// # Panics
/// Panics if `x` is not `num_nodes` long, `rows` is out of range, or `out`
/// does not have exactly `rows.len()` elements.
pub fn pt_multiply_rows<G: NeighborAccess>(
    graph: &G,
    x: &[f64],
    rows: std::ops::Range<usize>,
    out: &mut [f64],
) {
    let n = graph.num_nodes();
    assert_eq!(x.len(), n, "input vector length must equal num_nodes");
    assert!(rows.end <= n, "row range out of bounds");
    assert_eq!(
        out.len(),
        rows.len(),
        "output slice must match the row range"
    );
    for (slot, i) in out.iter_mut().zip(rows) {
        let i = i as NodeId;
        let din = graph.in_degree(i);
        if din == 0 {
            *slot = 0.0;
            continue;
        }
        let mut acc = 0.0;
        for &j in graph.in_neighbors(i).iter() {
            acc += x[j as usize];
        }
        *slot = acc / din as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;
    use crate::linalg::dense::{l1_norm, unit_vector};

    /// 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 0 (same sample as digraph tests).
    fn sample() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn p_multiply_matches_manual_computation() {
        let g = sample();
        // Walk from node 2: in-neighbors of 2 are {0, 1}, so P·e_2 puts 1/2 on each.
        let e2 = unit_vector(4, 2);
        let mut y = vec![0.0; 4];
        p_multiply(&g, &e2, &mut y);
        assert!((y[0] - 0.5).abs() < 1e-15);
        assert!((y[1] - 0.5).abs() < 1e-15);
        assert_eq!(y[2], 0.0);
        assert_eq!(y[3], 0.0);
    }

    #[test]
    fn p_multiply_loses_mass_only_at_sources() {
        let g = sample();
        // Node 1 has no in-neighbors, so mass on node 1 disappears under P.
        let e1 = unit_vector(4, 1);
        let mut y = vec![0.0; 4];
        p_multiply(&g, &e1, &mut y);
        assert!(l1_norm(&y) < 1e-15);

        // A distribution avoiding node 1 is preserved.
        let x = vec![0.25, 0.0, 0.5, 0.25];
        p_multiply(&g, &x, &mut y);
        assert!((l1_norm(&y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pt_multiply_matches_manual_computation() {
        let g = sample();
        // (Pᵀ·x)(2) = (x(0) + x(1)) / 2
        let x = vec![1.0, 3.0, 5.0, 7.0];
        let mut y = vec![0.0; 4];
        pt_multiply(&g, &x, &mut y);
        assert!((y[2] - 2.0).abs() < 1e-15);
        // (Pᵀ·x)(0) = x(3)/1 = 7, (Pᵀ·x)(3) = x(2)/1 = 5, node 1 has din=0 → 0.
        assert!((y[0] - 7.0).abs() < 1e-15);
        assert!((y[3] - 5.0).abs() < 1e-15);
        assert_eq!(y[1], 0.0);
    }

    #[test]
    fn transpose_relationship_holds() {
        // <P·x, y> == <x, Pᵀ·y> for arbitrary vectors.
        let g = sample();
        let x = vec![0.3, 0.1, 0.4, 0.2];
        let y = vec![1.0, -2.0, 0.5, 3.0];
        let mut px = vec![0.0; 4];
        let mut pty = vec![0.0; 4];
        p_multiply(&g, &x, &mut px);
        pt_multiply(&g, &y, &mut pty);
        let lhs: f64 = px.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&pty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn sparse_kernels_agree_with_dense() {
        let g = sample();
        let mut ws = Workspace::new(4);
        for start in 0..4u32 {
            let dense = unit_vector(4, start);
            let sparse = SparseVec::unit(start, 1.0);

            let mut dense_out = vec![0.0; 4];
            p_multiply(&g, &dense, &mut dense_out);
            let sparse_out = p_multiply_sparse(&g, &sparse, &mut ws);
            assert_eq!(sparse_out.to_dense(4), dense_out, "P·e_{start}");

            let mut dense_out_t = vec![0.0; 4];
            pt_multiply(&g, &dense, &mut dense_out_t);
            let sparse_out_t = pt_multiply_sparse(&g, &sparse, &mut ws);
            assert_eq!(sparse_out_t.to_dense(4), dense_out_t, "Pᵀ·e_{start}");
        }
    }

    #[test]
    fn workspace_is_reusable_without_leftover_state() {
        let g = sample();
        let mut ws = Workspace::new(4);
        let a = p_multiply_sparse(&g, &SparseVec::unit(2, 1.0), &mut ws);
        let b = p_multiply_sparse(&g, &SparseVec::unit(2, 1.0), &mut ws);
        assert_eq!(a, b);
        assert_eq!(ws.num_touched(), 0);
        for i in 0..4 {
            assert_eq!(ws.value(i), 0.0);
        }
    }

    #[test]
    fn workspace_accumulates_and_drains_sorted_including_cancellations() {
        let mut ws = Workspace::new(5);
        ws.add(3, 1.0);
        ws.add(1, 2.0);
        ws.add(3, -1.0); // cancels to exactly 0.0
        ws.add(4, 0.5);
        assert_eq!(ws.value(3), 0.0);
        assert_eq!(ws.value(1), 2.0);
        assert_eq!(ws.value(0), 0.0);
        let mut seen = Vec::new();
        ws.drain_sorted(|i, v| seen.push((i, v)));
        // Sorted order, cancelled entries included exactly once.
        assert_eq!(seen, vec![(1, 2.0), (3, 0.0), (4, 0.5)]);
        // After the drain the workspace is fresh.
        assert_eq!(ws.num_touched(), 0);
        assert_eq!(ws.value(1), 0.0);

        // drain_into drops exact zeros, like the SparseVec invariant requires.
        ws.add(2, 1.0);
        ws.add(0, -1.0);
        ws.add(0, 1.0);
        let mut out = SparseVec::unit(9, 9.0);
        ws.drain_into(&mut out);
        assert_eq!(out.indices(), &[2]);
        assert_eq!(out.values(), &[1.0]);
    }

    #[test]
    fn into_variants_match_the_allocating_kernels() {
        let g = sample();
        let mut ws = Workspace::new(4);
        let x = SparseVec::from_unsorted(vec![(2, 0.75), (0, 0.25)]);
        let a = p_multiply_sparse(&g, &x, &mut ws);
        let mut b = SparseVec::new();
        p_multiply_sparse_into(&g, &x, &mut ws, &mut b);
        assert_eq!(a, b);
        let c = pt_multiply_sparse(&g, &x, &mut ws);
        let mut d = SparseVec::new();
        pt_multiply_sparse_into(&g, &x, &mut ws, &mut d);
        assert_eq!(c, d);
    }

    #[test]
    fn row_kernels_are_bit_identical_to_the_full_dense_kernels() {
        let g = sample();
        let x = vec![0.3, 0.1, 0.4, 0.2];
        let mut full = vec![0.0; 4];
        p_multiply(&g, &x, &mut full);
        // Any shard split reproduces the full result exactly.
        for split in 0..=4usize {
            let mut sharded = vec![9.0; 4];
            let (lo, hi) = sharded.split_at_mut(split);
            p_multiply_rows(&g, &x, 0..split, lo);
            p_multiply_rows(&g, &x, split..4, hi);
            assert_eq!(sharded, full, "split at {split}");
        }
        let mut full_t = vec![0.0; 4];
        pt_multiply(&g, &x, &mut full_t);
        for split in 0..=4usize {
            let mut sharded = vec![9.0; 4];
            let (lo, hi) = sharded.split_at_mut(split);
            pt_multiply_rows(&g, &x, 0..split, lo);
            pt_multiply_rows(&g, &x, split..4, hi);
            assert_eq!(sharded, full_t, "split at {split}");
        }
    }

    #[test]
    fn multi_step_walk_distribution_sums_correctly() {
        // On the cycle part of the sample graph mass circulates forever.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut x = unit_vector(3, 0);
        let mut y = vec![0.0; 3];
        for _ in 0..10 {
            p_multiply(&g, &x, &mut y);
            std::mem::swap(&mut x, &mut y);
            assert!((l1_norm(&x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "num_nodes")]
    fn dense_kernel_checks_lengths() {
        let g = sample();
        let x = vec![0.0; 3];
        let mut y = vec![0.0; 4];
        p_multiply(&g, &x, &mut y);
    }
}
