//! The reverse transition operator `P` and its transpose.
//!
//! With `P(i, j) = 1/din(j)` for `i ∈ I(j)` (edge `i → j` exists):
//!
//! * `(P·x)(i) = Σ_{j ∈ O(i)} x(j) / din(j)` — node `i` *receives* from every
//!   node `j` it points at, i.e. mass flows backwards along edges. Applying
//!   `√c·P` repeatedly to `e_i` yields the ℓ-hop walk distributions of the
//!   √c-walk started at `i` (up to the `(1-√c)` stop factor).
//! * `(Pᵀ·x)(i) = (1/din(i)) Σ_{j ∈ I(i)} x(j)` — averaging over in-neighbors,
//!   the accumulation step of the Linearization recurrence (eq. 6/9).
//!
//! Nodes with `din = 0` contribute nothing under `P` and receive nothing under
//! `Pᵀ`, matching the convention that a √c-walk stuck at such a node simply
//! stops (the paper's Algorithm 3 handles this case explicitly with
//! `D(k,k) = 1`).

use crate::digraph::DiGraph;
use crate::linalg::sparse_vec::SparseVec;
use crate::NodeId;

/// Dense `y ← P·x`. `x` and `y` must have length `n`; `y` is overwritten.
///
/// # Panics
/// Panics if `x` or `y` has length different from `graph.num_nodes()`.
pub fn p_multiply(graph: &DiGraph, x: &[f64], y: &mut [f64]) {
    let n = graph.num_nodes();
    assert_eq!(x.len(), n, "input vector length must equal num_nodes");
    assert_eq!(y.len(), n, "output vector length must equal num_nodes");
    // (P·x)(i) = Σ_{j ∈ O(i)} x(j)/din(j). Precomputing x(j)/din(j) once per j
    // and gathering over out-neighbors keeps the inner loop to one multiply-add.
    // We instead scatter from each j to its in-neighbors, which touches each
    // edge exactly once and avoids recomputing 1/din(j) per edge.
    for v in y.iter_mut() {
        *v = 0.0;
    }
    for j in 0..n as NodeId {
        let xj = x[j as usize];
        if xj == 0.0 {
            continue;
        }
        let din = graph.in_degree(j);
        if din == 0 {
            continue;
        }
        let share = xj / din as f64;
        for &i in graph.in_neighbors(j) {
            y[i as usize] += share;
        }
    }
}

/// Dense `y ← Pᵀ·x`. `x` and `y` must have length `n`; `y` is overwritten.
///
/// # Panics
/// Panics if `x` or `y` has length different from `graph.num_nodes()`.
pub fn pt_multiply(graph: &DiGraph, x: &[f64], y: &mut [f64]) {
    let n = graph.num_nodes();
    assert_eq!(x.len(), n, "input vector length must equal num_nodes");
    assert_eq!(y.len(), n, "output vector length must equal num_nodes");
    for i in 0..n as NodeId {
        let din = graph.in_degree(i);
        if din == 0 {
            y[i as usize] = 0.0;
            continue;
        }
        let mut acc = 0.0;
        for &j in graph.in_neighbors(i) {
            acc += x[j as usize];
        }
        y[i as usize] = acc / din as f64;
    }
}

/// Reusable dense scratch space for the sparse kernels.
///
/// The sparse kernels accumulate into a dense `f64` buffer plus a "touched"
/// list (the classic sparse-accumulator pattern), so a sequence of
/// sparse-matrix × sparse-vector products performs no per-call allocation
/// beyond the output vector.
#[derive(Clone, Debug)]
pub struct Workspace {
    accum: Vec<f64>,
    touched: Vec<NodeId>,
}

impl Workspace {
    /// Creates a workspace for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Workspace {
            accum: vec![0.0; n],
            touched: Vec::new(),
        }
    }

    /// Number of nodes this workspace supports.
    pub fn len(&self) -> usize {
        self.accum.len()
    }

    /// `true` iff the workspace covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.accum.is_empty()
    }

    fn add(&mut self, i: NodeId, v: f64) {
        let slot = &mut self.accum[i as usize];
        if *slot == 0.0 {
            self.touched.push(i);
        }
        *slot += v;
    }

    /// Drains the accumulated entries into a sorted [`SparseVec`] and resets
    /// the workspace for reuse. Entries that cancelled to exactly 0.0 are kept
    /// out of the result.
    fn drain_sparse(&mut self) -> SparseVec {
        self.touched.sort_unstable();
        let mut out = SparseVec::with_capacity(self.touched.len());
        for &i in &self.touched {
            let v = self.accum[i as usize];
            self.accum[i as usize] = 0.0;
            if v != 0.0 {
                out.push_sorted(i, v);
            }
        }
        self.touched.clear();
        out
    }
}

/// Sparse `P·x` using a reusable [`Workspace`]; returns a sorted [`SparseVec`].
///
/// Cost is `O(Σ_{j ∈ supp(x)} din(j) + |out| log |out|)` — independent of `n`,
/// which is what makes the sparse Linearization of §3.2 scale.
pub fn p_multiply_sparse(graph: &DiGraph, x: &SparseVec, ws: &mut Workspace) -> SparseVec {
    debug_assert_eq!(ws.len(), graph.num_nodes());
    for (j, xj) in x.iter() {
        let din = graph.in_degree(j);
        if din == 0 || xj == 0.0 {
            continue;
        }
        let share = xj / din as f64;
        for &i in graph.in_neighbors(j) {
            ws.add(i, share);
        }
    }
    ws.drain_sparse()
}

/// Sparse `Pᵀ·x` using a reusable [`Workspace`]; returns a sorted [`SparseVec`].
///
/// For every node `j` in the support of `x`, its contribution `x(j)` is spread
/// to each out-neighbor `i` of `j` with weight `1/din(i)`.
pub fn pt_multiply_sparse(graph: &DiGraph, x: &SparseVec, ws: &mut Workspace) -> SparseVec {
    debug_assert_eq!(ws.len(), graph.num_nodes());
    for (j, xj) in x.iter() {
        if xj == 0.0 {
            continue;
        }
        for &i in graph.out_neighbors(j) {
            let din = graph.in_degree(i);
            debug_assert!(din > 0, "out-neighbor must have at least one in-edge");
            ws.add(i, xj / din as f64);
        }
    }
    ws.drain_sparse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::dense::{l1_norm, unit_vector};

    /// 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 0 (same sample as digraph tests).
    fn sample() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn p_multiply_matches_manual_computation() {
        let g = sample();
        // Walk from node 2: in-neighbors of 2 are {0, 1}, so P·e_2 puts 1/2 on each.
        let e2 = unit_vector(4, 2);
        let mut y = vec![0.0; 4];
        p_multiply(&g, &e2, &mut y);
        assert!((y[0] - 0.5).abs() < 1e-15);
        assert!((y[1] - 0.5).abs() < 1e-15);
        assert_eq!(y[2], 0.0);
        assert_eq!(y[3], 0.0);
    }

    #[test]
    fn p_multiply_loses_mass_only_at_sources() {
        let g = sample();
        // Node 1 has no in-neighbors, so mass on node 1 disappears under P.
        let e1 = unit_vector(4, 1);
        let mut y = vec![0.0; 4];
        p_multiply(&g, &e1, &mut y);
        assert!(l1_norm(&y) < 1e-15);

        // A distribution avoiding node 1 is preserved.
        let x = vec![0.25, 0.0, 0.5, 0.25];
        p_multiply(&g, &x, &mut y);
        assert!((l1_norm(&y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pt_multiply_matches_manual_computation() {
        let g = sample();
        // (Pᵀ·x)(2) = (x(0) + x(1)) / 2
        let x = vec![1.0, 3.0, 5.0, 7.0];
        let mut y = vec![0.0; 4];
        pt_multiply(&g, &x, &mut y);
        assert!((y[2] - 2.0).abs() < 1e-15);
        // (Pᵀ·x)(0) = x(3)/1 = 7, (Pᵀ·x)(3) = x(2)/1 = 5, node 1 has din=0 → 0.
        assert!((y[0] - 7.0).abs() < 1e-15);
        assert!((y[3] - 5.0).abs() < 1e-15);
        assert_eq!(y[1], 0.0);
    }

    #[test]
    fn transpose_relationship_holds() {
        // <P·x, y> == <x, Pᵀ·y> for arbitrary vectors.
        let g = sample();
        let x = vec![0.3, 0.1, 0.4, 0.2];
        let y = vec![1.0, -2.0, 0.5, 3.0];
        let mut px = vec![0.0; 4];
        let mut pty = vec![0.0; 4];
        p_multiply(&g, &x, &mut px);
        pt_multiply(&g, &y, &mut pty);
        let lhs: f64 = px.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&pty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn sparse_kernels_agree_with_dense() {
        let g = sample();
        let mut ws = Workspace::new(4);
        for start in 0..4u32 {
            let dense = unit_vector(4, start);
            let sparse = SparseVec::unit(start, 1.0);

            let mut dense_out = vec![0.0; 4];
            p_multiply(&g, &dense, &mut dense_out);
            let sparse_out = p_multiply_sparse(&g, &sparse, &mut ws);
            assert_eq!(sparse_out.to_dense(4), dense_out, "P·e_{start}");

            let mut dense_out_t = vec![0.0; 4];
            pt_multiply(&g, &dense, &mut dense_out_t);
            let sparse_out_t = pt_multiply_sparse(&g, &sparse, &mut ws);
            assert_eq!(sparse_out_t.to_dense(4), dense_out_t, "Pᵀ·e_{start}");
        }
    }

    #[test]
    fn workspace_is_reusable_without_leftover_state() {
        let g = sample();
        let mut ws = Workspace::new(4);
        let a = p_multiply_sparse(&g, &SparseVec::unit(2, 1.0), &mut ws);
        let b = p_multiply_sparse(&g, &SparseVec::unit(2, 1.0), &mut ws);
        assert_eq!(a, b);
        assert!(ws.touched.is_empty());
        assert!(ws.accum.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn multi_step_walk_distribution_sums_correctly() {
        // On the cycle part of the sample graph mass circulates forever.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut x = unit_vector(3, 0);
        let mut y = vec![0.0; 3];
        for _ in 0..10 {
            p_multiply(&g, &x, &mut y);
            std::mem::swap(&mut x, &mut y);
            assert!((l1_norm(&x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "num_nodes")]
    fn dense_kernel_checks_lengths() {
        let g = sample();
        let x = vec![0.0; 3];
        let mut y = vec![0.0; 4];
        p_multiply(&g, &x, &mut y);
    }
}
