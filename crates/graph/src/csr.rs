//! Compressed-sparse-row adjacency storage.

use crate::NodeId;

/// One orientation of a graph's adjacency in compressed-sparse-row form.
///
/// For a graph with `n` nodes, `offsets` has length `n + 1` and the neighbors
/// of node `v` are `targets[offsets[v] .. offsets[v + 1]]`. Neighbor lists are
/// sorted ascending, which makes membership tests `O(log deg)` and keeps
/// iteration cache-friendly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrAdjacency {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Builds a CSR structure from per-source neighbor lists.
    ///
    /// `edges` is an iterator of `(source, target)` pairs; `num_nodes` fixes
    /// the node-id space. Neighbor lists are sorted; duplicates are *kept*
    /// (deduplication is the builder's responsibility).
    pub fn from_edges<I>(num_nodes: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut degrees = vec![0usize; num_nodes];
        let edges: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
        for &(u, _) in &edges {
            degrees[u as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as NodeId; acc];
        for (u, v) in edges {
            let slot = cursor[u as usize];
            targets[slot] = v;
            cursor[u as usize] += 1;
        }
        // Sort each adjacency list for deterministic iteration order.
        for v in 0..num_nodes {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        CsrAdjacency { offsets, targets }
    }

    /// Builds a CSR structure directly from already-counted, already-sorted parts.
    ///
    /// `offsets.len()` must be `num_nodes + 1`, `offsets[0] == 0`, offsets must
    /// be non-decreasing and `offsets[num_nodes] == targets.len()`.
    /// Panics (debug assertions) if the invariants do not hold.
    pub fn from_raw_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        CsrAdjacency { offsets, targets }
    }

    /// Returns a copy of this adjacency covering `additional` extra nodes,
    /// all isolated: the offsets array is extended by repeating the final
    /// offset, so existing neighbor lists are untouched and the new nodes
    /// have degree zero. `O(n + m)` (one copy), the cheap half of the store's
    /// `addnode` growth path.
    pub fn grow(&self, additional: usize) -> Self {
        let last = *self.offsets.last().expect("offsets never empty");
        let mut offsets = Vec::with_capacity(self.offsets.len() + additional);
        offsets.extend_from_slice(&self.offsets);
        offsets.resize(self.offsets.len() + additional, last);
        CsrAdjacency {
            offsets,
            targets: self.targets.clone(),
        }
    }

    /// Number of nodes covered by this adjacency.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v` in this orientation.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbor slice of `v` in this orientation (sorted ascending).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// `true` iff the directed edge `u → v` is stored.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all stored `(source, target)` pairs in source order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            self.neighbors(u as NodeId)
                .iter()
                .map(move |&v| (u as NodeId, v))
        })
    }

    /// Approximate heap footprint of this structure in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<NodeId>()
    }

    /// The raw offsets array (length `num_nodes + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw targets array (length `num_edges`).
    #[inline]
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Rebuilds this orientation with a batch of edge insertions and
    /// deletions applied, in `O(m + Δ)` — one merge pass over the existing
    /// CSR arrays instead of a from-scratch `O(m log m)` reconstruction.
    ///
    /// `insertions` and `deletions` must both be sorted by `(source, target)`,
    /// duplicate-free, and name endpoints `< num_nodes` (all debug-asserted:
    /// a silently-dropped out-of-range source or stored out-of-range target
    /// would desync the two orientations of a `DiGraph`); a deletion removes
    /// *every* stored occurrence of its edge (set semantics), and inserting
    /// an edge that is already present stores a second copy — callers that
    /// want set semantics must pre-filter against [`CsrAdjacency::has_edge`],
    /// which is what higher-level delta buffers do.
    pub fn apply_delta(
        &self,
        insertions: &[(NodeId, NodeId)],
        deletions: &[(NodeId, NodeId)],
    ) -> CsrAdjacency {
        debug_assert!(insertions.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(deletions.windows(2).all(|w| w[0] < w[1]));
        let n = self.num_nodes();
        debug_assert!(insertions
            .iter()
            .chain(deletions)
            .all(|&(u, t)| (u as usize) < n && (t as usize) < n));
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(
            (self.num_edges() + insertions.len()).saturating_sub(deletions.len()),
        );
        offsets.push(0usize);
        let (mut ins, mut del) = (0usize, 0usize);
        for v in 0..n as NodeId {
            let old = self.neighbors(v);
            // The slices of this node's insertions / deletions.
            let ins_lo = ins;
            while ins < insertions.len() && insertions[ins].0 == v {
                ins += 1;
            }
            let del_lo = del;
            while del < deletions.len() && deletions[del].0 == v {
                del += 1;
            }
            let mut add = insertions[ins_lo..ins].iter().map(|&(_, t)| t).peekable();
            let mut drop = deletions[del_lo..del].iter().map(|&(_, t)| t).peekable();
            // Merge the sorted old list with the sorted additions, skipping
            // every target named by a deletion.
            for &t in old {
                while add.peek().is_some_and(|&a| a < t) {
                    targets.push(add.next().expect("peeked"));
                }
                while drop.peek().is_some_and(|&d| d < t) {
                    drop.next();
                }
                if drop.peek() == Some(&t) {
                    continue; // deleted (all occurrences of t are skipped)
                }
                targets.push(t);
            }
            targets.extend(add);
            offsets.push(targets.len());
        }
        CsrAdjacency { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrAdjacency {
        // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
        CsrAdjacency::from_edges(4, vec![(0, 2), (0, 1), (1, 2), (3, 0)])
    }

    #[test]
    fn builds_and_sorts_neighbor_lists() {
        let csr = sample();
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[2]);
        assert_eq!(csr.neighbors(2), &[] as &[NodeId]);
        assert_eq!(csr.neighbors(3), &[0]);
    }

    #[test]
    fn degree_matches_neighbor_length() {
        let csr = sample();
        for v in 0..4u32 {
            assert_eq!(csr.degree(v), csr.neighbors(v).len());
        }
    }

    #[test]
    fn has_edge_uses_binary_search() {
        let csr = sample();
        assert!(csr.has_edge(0, 1));
        assert!(csr.has_edge(0, 2));
        assert!(!csr.has_edge(2, 0));
        assert!(!csr.has_edge(0, 3));
    }

    #[test]
    fn iter_edges_round_trips() {
        let csr = sample();
        let edges: Vec<_> = csr.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (3, 0)]);
        let rebuilt = CsrAdjacency::from_edges(4, edges);
        assert_eq!(rebuilt, csr);
    }

    #[test]
    fn empty_graph_is_fine() {
        let csr = CsrAdjacency::from_edges(0, Vec::new());
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn nodes_without_edges_have_zero_degree() {
        let csr = CsrAdjacency::from_edges(5, vec![(0, 1)]);
        assert_eq!(csr.degree(4), 0);
        assert_eq!(csr.neighbors(4), &[] as &[NodeId]);
    }

    #[test]
    fn duplicate_edges_are_kept() {
        let csr = CsrAdjacency::from_edges(2, vec![(0, 1), (0, 1)]);
        assert_eq!(csr.num_edges(), 2);
        assert_eq!(csr.neighbors(0), &[1, 1]);
    }

    #[test]
    fn from_raw_parts_round_trip() {
        let csr = sample();
        let rebuilt = CsrAdjacency::from_raw_parts(csr.offsets().to_vec(), csr.targets().to_vec());
        assert_eq!(rebuilt, csr);
    }

    #[test]
    fn memory_bytes_is_positive_for_nonempty() {
        let csr = sample();
        assert!(csr.memory_bytes() > 0);
    }

    #[test]
    fn apply_delta_matches_from_scratch_rebuild() {
        let csr = sample(); // 0 -> {1, 2}, 1 -> {2}, 2 -> {}, 3 -> {0}
        let insertions = vec![(0, 3), (2, 0), (2, 1)];
        let deletions = vec![(0, 2), (3, 0)];
        let rebuilt = csr.apply_delta(&insertions, &deletions);
        let expected = CsrAdjacency::from_edges(4, vec![(0, 1), (0, 3), (1, 2), (2, 0), (2, 1)]);
        assert_eq!(rebuilt, expected);
        // The original is untouched.
        assert_eq!(csr.num_edges(), 4);
    }

    #[test]
    fn apply_delta_with_empty_delta_is_identity() {
        let csr = sample();
        assert_eq!(csr.apply_delta(&[], &[]), csr);
    }

    #[test]
    fn apply_delta_deletes_every_occurrence_of_a_duplicate_edge() {
        let csr = CsrAdjacency::from_edges(2, vec![(0, 1), (0, 1)]);
        let cleaned = csr.apply_delta(&[], &[(0, 1)]);
        assert_eq!(cleaned.num_edges(), 0);
    }

    #[test]
    fn apply_delta_ignores_deletions_of_absent_edges() {
        let csr = sample();
        let same = csr.apply_delta(&[], &[(1, 0), (2, 3)]);
        assert_eq!(same, csr);
    }

    #[test]
    fn apply_delta_interleaves_insertions_in_sorted_position() {
        let csr = CsrAdjacency::from_edges(4, vec![(0, 2)]);
        // Additions below and above the existing target keep the list sorted.
        let grown = csr.apply_delta(&[(0, 1), (0, 3)], &[]);
        assert_eq!(grown.neighbors(0), &[1, 2, 3]);
        // An addition equal to an existing target stores a second copy (the
        // documented multiset semantics — dedup is the caller's job).
        let dup = csr.apply_delta(&[(0, 2)], &[]);
        assert_eq!(dup.neighbors(0), &[2, 2]);
        assert_eq!(dup.num_edges(), 2);
    }
}
