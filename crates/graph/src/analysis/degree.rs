//! Degree statistics and histograms.

use crate::digraph::DiGraph;

/// Summary statistics of a graph's in- and out-degree distributions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Average degree `m / n`.
    pub average_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of nodes with in-degree zero (the √c-walk stops immediately).
    pub zero_in_degree: usize,
    /// Number of nodes with out-degree zero.
    pub zero_out_degree: usize,
    /// Estimated power-law exponent of the in-degree distribution via the
    /// Hill / maximum-likelihood estimator over degrees ≥ `xmin = 2`
    /// (`None` when there are too few qualifying nodes to estimate).
    pub in_degree_power_law_exponent: Option<f64>,
}

impl DegreeStats {
    /// Computes the statistics for a graph.
    pub fn compute(graph: &DiGraph) -> Self {
        let n = graph.num_nodes();
        let mut max_in = 0usize;
        let mut max_out = 0usize;
        let mut zero_in = 0usize;
        let mut zero_out = 0usize;
        for v in graph.nodes() {
            let din = graph.in_degree(v);
            let dout = graph.out_degree(v);
            max_in = max_in.max(din);
            max_out = max_out.max(dout);
            if din == 0 {
                zero_in += 1;
            }
            if dout == 0 {
                zero_out += 1;
            }
        }
        DegreeStats {
            nodes: n,
            edges: graph.num_edges(),
            average_degree: graph.average_degree(),
            max_in_degree: max_in,
            max_out_degree: max_out,
            zero_in_degree: zero_in,
            zero_out_degree: zero_out,
            in_degree_power_law_exponent: estimate_power_law_exponent(graph),
        }
    }
}

/// Hill estimator for the in-degree power-law exponent with `xmin = 2`.
fn estimate_power_law_exponent(graph: &DiGraph) -> Option<f64> {
    const XMIN: f64 = 2.0;
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for v in graph.nodes() {
        let d = graph.in_degree(v) as f64;
        if d >= XMIN {
            count += 1;
            log_sum += (d / XMIN).ln();
        }
    }
    if count < 10 || log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + count as f64 / log_sum)
}

/// Histogram of in-degrees: `histogram[d]` is the number of nodes with
/// in-degree exactly `d`.
pub fn degree_histogram(graph: &DiGraph) -> Vec<usize> {
    let mut hist = vec![0usize; graph.max_in_degree() + 1];
    for v in graph.nodes() {
        hist[graph.in_degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, complete, star};

    #[test]
    fn stats_on_star() {
        let g = star(10, false);
        let stats = DegreeStats::compute(&g);
        assert_eq!(stats.nodes, 10);
        assert_eq!(stats.edges, 9);
        assert_eq!(stats.max_in_degree, 9);
        assert_eq!(stats.max_out_degree, 1);
        assert_eq!(stats.zero_in_degree, 9);
        assert_eq!(stats.zero_out_degree, 1);
    }

    #[test]
    fn stats_on_complete_graph() {
        let g = complete(6);
        let stats = DegreeStats::compute(&g);
        assert_eq!(stats.max_in_degree, 5);
        assert_eq!(stats.zero_in_degree, 0);
        assert!((stats.average_degree - 5.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_sums_to_node_count() {
        let g = barabasi_albert(500, 3, false, 2).unwrap();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.num_nodes());
        // Total in-degree equals edge count.
        let total: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn power_law_exponent_detected_on_ba_graph() {
        let g = barabasi_albert(3000, 3, false, 5).unwrap();
        let stats = DegreeStats::compute(&g);
        let gamma = stats
            .in_degree_power_law_exponent
            .expect("BA graph should yield an exponent estimate");
        // BA in-degree tails are power-law-ish; the Hill estimate should land
        // in a broad but sane range.
        assert!(
            (1.2..5.0).contains(&gamma),
            "unexpected exponent estimate {gamma}"
        );
    }

    #[test]
    fn exponent_is_none_for_tiny_graphs() {
        let g = star(4, false);
        let stats = DegreeStats::compute(&g);
        assert!(stats.in_degree_power_law_exponent.is_none());
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::GraphBuilder::new(0).build();
        let stats = DegreeStats::compute(&g);
        assert_eq!(stats.nodes, 0);
        assert_eq!(stats.max_in_degree, 0);
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![0]);
    }
}
