//! Weakly and strongly connected components.

use crate::digraph::DiGraph;
use crate::NodeId;

/// A labelling of every node with a component id `0..num_components`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentLabels {
    /// `labels[v]` is the component id of node `v`.
    pub labels: Vec<usize>,
    /// Number of distinct components.
    pub num_components: usize,
}

impl ComponentLabels {
    /// Size of each component, indexed by component id.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for &c in &self.labels {
            sizes[c] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn largest_component_size(&self) -> usize {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }

    /// `true` iff nodes `u` and `v` share a component.
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }
}

/// Weakly connected components: edge direction is ignored. Iterative BFS.
pub fn weakly_connected_components(graph: &DiGraph) -> ComponentLabels {
    let n = graph.num_nodes();
    const UNVISITED: usize = usize::MAX;
    let mut labels = vec![UNVISITED; n];
    let mut num_components = 0usize;
    let mut queue: Vec<NodeId> = Vec::new();
    for start in 0..n as NodeId {
        if labels[start as usize] != UNVISITED {
            continue;
        }
        labels[start as usize] = num_components;
        queue.clear();
        queue.push(start);
        while let Some(v) = queue.pop() {
            for &w in graph.out_neighbors(v).iter().chain(graph.in_neighbors(v)) {
                if labels[w as usize] == UNVISITED {
                    labels[w as usize] = num_components;
                    queue.push(w);
                }
            }
        }
        num_components += 1;
    }
    ComponentLabels {
        labels,
        num_components,
    }
}

/// Strongly connected components via an iterative Tarjan algorithm
/// (explicit stack, so deep graphs cannot overflow the call stack).
pub fn strongly_connected_components(graph: &DiGraph) -> ComponentLabels {
    let n = graph.num_nodes();
    const UNSET: usize = usize::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut labels = vec![UNSET; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut num_components = 0usize;

    // Each frame is (node, position in its out-neighbor list).
    let mut call_stack: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n as NodeId {
        if index[root as usize] != UNSET {
            continue;
        }
        call_stack.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            let neighbors = graph.out_neighbors(v);
            if *child_pos < neighbors.len() {
                let w = neighbors[*child_pos];
                *child_pos += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of an SCC: pop the stack down to v.
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        labels[w as usize] = num_components;
                        if w == v {
                            break;
                        }
                    }
                    num_components += 1;
                }
            }
        }
    }
    ComponentLabels {
        labels,
        num_components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path, star};
    use crate::DiGraph;

    #[test]
    fn wcc_on_disconnected_graph() {
        // Two separate edges and one isolated node: 3 weak components.
        let g = DiGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.num_components, 3);
        assert!(wcc.same_component(0, 1));
        assert!(wcc.same_component(2, 3));
        assert!(!wcc.same_component(0, 2));
        assert_eq!(wcc.component_sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn wcc_ignores_direction() {
        let g = path(6);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.num_components, 1);
        assert_eq!(wcc.largest_component_size(), 6);
    }

    #[test]
    fn scc_on_cycle_is_single_component() {
        let g = cycle(8);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 1);
    }

    #[test]
    fn scc_on_path_is_singletons() {
        let g = path(5);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 5);
        for u in 0..5u32 {
            for v in 0..5u32 {
                if u != v {
                    assert!(!scc.same_component(u, v));
                }
            }
        }
    }

    #[test]
    fn scc_mixed_structure() {
        // A 3-cycle {0,1,2}, plus 3 -> 0 and 2 -> 4: SCCs are {0,1,2}, {3}, {4}.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (2, 4)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 3);
        assert!(scc.same_component(0, 1));
        assert!(scc.same_component(1, 2));
        assert!(!scc.same_component(0, 3));
        assert!(!scc.same_component(0, 4));
        assert_eq!(scc.largest_component_size(), 3);
    }

    #[test]
    fn scc_on_star_is_singletons_wcc_is_one() {
        let g = star(7, false);
        assert_eq!(strongly_connected_components(&g).num_components, 7);
        assert_eq!(weakly_connected_components(&g).num_components, 1);
    }

    #[test]
    fn empty_graph_has_zero_components() {
        let g = DiGraph::from_edges(0, &[]);
        assert_eq!(weakly_connected_components(&g).num_components, 0);
        assert_eq!(strongly_connected_components(&g).num_components, 0);
        assert_eq!(weakly_connected_components(&g).largest_component_size(), 0);
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // 50k-node path exercises the iterative implementations.
        let g = path(50_000);
        assert_eq!(weakly_connected_components(&g).num_components, 1);
        assert_eq!(strongly_connected_components(&g).num_components, 50_000);
    }
}
