//! PageRank over the out-edge orientation.
//!
//! PRSim (Wei et al., SIGMOD 2019) selects index ("hub") nodes by PageRank and
//! its average query cost is `O(n·‖π‖²·log n / ε²)` where `π` is the PageRank
//! vector; the ExactSim paper's §2 discussion reuses that quantity. This module
//! provides the standard damped power-iteration PageRank used for both.

use crate::access::NeighborAccess;
use crate::NodeId;

/// Parameters for [`pagerank`].
#[derive(Clone, Copy, Debug)]
pub struct PageRankConfig {
    /// Damping factor (probability of following an edge instead of teleporting).
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// Stop when the L1 change between successive iterations drops below this.
    pub tolerance: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-10,
        }
    }
}

/// Computes the PageRank vector (L1-normalised to 1) following out-edges,
/// with uniform teleportation and dangling-node mass redistributed uniformly.
///
/// Returns an empty vector for the empty graph.
pub fn pagerank<G: NeighborAccess>(graph: &G, config: PageRankConfig) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];
    let d = config.damping;

    for _ in 0..config.max_iterations {
        let mut dangling_mass = 0.0;
        for v in next.iter_mut() {
            *v = 0.0;
        }
        for u in 0..n as NodeId {
            let out = graph.out_neighbors(u);
            let r = rank[u as usize];
            if out.is_empty() {
                dangling_mass += r;
            } else {
                let share = r / out.len() as f64;
                for &w in out.iter() {
                    next[w as usize] += share;
                }
            }
        }
        let teleport = (1.0 - d) * uniform + d * dangling_mass * uniform;
        let mut delta = 0.0;
        for v in 0..n {
            let new_val = d * next[v] + teleport;
            delta += (new_val - rank[v]).abs();
            next[v] = new_val;
        }
        std::mem::swap(&mut rank, &mut next);
        if delta < config.tolerance {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{barabasi_albert, complete, cycle, star};

    fn sums_to_one(rank: &[f64]) -> bool {
        (rank.iter().sum::<f64>() - 1.0).abs() < 1e-9
    }

    #[test]
    fn uniform_on_symmetric_graphs() {
        for g in [complete(6), cycle(7)] {
            let rank = pagerank(&g, PageRankConfig::default());
            assert!(sums_to_one(&rank));
            let expected = 1.0 / g.num_nodes() as f64;
            for &r in &rank {
                assert!((r - expected).abs() < 1e-9, "rank {r} != {expected}");
            }
        }
    }

    #[test]
    fn hub_dominates_on_star() {
        // All leaves point at the hub, so the hub should hold much more rank.
        let g = star(11, false);
        let rank = pagerank(&g, PageRankConfig::default());
        assert!(sums_to_one(&rank));
        for leaf in 1..11 {
            assert!(rank[0] > 3.0 * rank[leaf]);
        }
    }

    #[test]
    fn values_are_positive_and_normalised_on_scale_free_graph() {
        let g = barabasi_albert(2000, 3, false, 1).unwrap();
        let rank = pagerank(&g, PageRankConfig::default());
        assert!(sums_to_one(&rank));
        assert!(rank.iter().all(|&r| r > 0.0));
        // Scale-free graph ⇒ small squared norm (the PRSim quantity).
        let norm_sq: f64 = rank.iter().map(|r| r * r).sum();
        assert!(norm_sq < 0.05, "‖π‖² = {norm_sq} should be ≪ 1");
    }

    #[test]
    fn empty_graph_gives_empty_vector() {
        let g = crate::GraphBuilder::new(0).build();
        assert!(pagerank(&g, PageRankConfig::default()).is_empty());
    }

    #[test]
    fn dangling_mass_is_conserved() {
        // A path has a sink; total rank must still be 1.
        let g = crate::generators::path(10);
        let rank = pagerank(&g, PageRankConfig::default());
        assert!(sums_to_one(&rank));
    }

    #[test]
    fn respects_iteration_budget() {
        let g = cycle(5);
        let config = PageRankConfig {
            max_iterations: 1,
            tolerance: 0.0,
            ..Default::default()
        };
        // One iteration on a cycle keeps the uniform vector (it's stationary).
        let rank = pagerank(&g, config);
        assert!(sums_to_one(&rank));
    }
}
