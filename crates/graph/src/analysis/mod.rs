//! Graph analysis utilities: degree statistics, connected components, PageRank.
//!
//! These are used to characterise the synthetic stand-in datasets (so the
//! benchmark harness can report the same dataset-statistics table as the
//! paper's Table 2) and by PRSim, whose index construction selects "hub" nodes
//! by PageRank and whose average-case cost is governed by `‖π‖²`.

mod components;
mod degree;
mod pagerank;

pub use components::{strongly_connected_components, weakly_connected_components, ComponentLabels};
pub use degree::{degree_histogram, DegreeStats};
pub use pagerank::{pagerank, PageRankConfig};
