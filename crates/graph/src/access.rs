//! The graph-access seam: [`NeighborAccess`].
//!
//! Every SimRank kernel in this workspace needs exactly four things from a
//! graph: node/edge counts, degrees, and the two sorted neighbor lists. This
//! trait captures that contract so the storage representation becomes
//! interchangeable — an in-memory CSR ([`DiGraph`]), a buffer-managed page
//! store (`exactsim-store`'s `PagedGraph`), or any future mmap'd snapshot —
//! without the solvers knowing which one they are running against.
//!
//! ## The guard type
//!
//! `out_neighbors`/`in_neighbors` return [`NeighborAccess::Neighbors`], a
//! generic associated type that merely has to [`Deref`] to `&[NodeId]`:
//!
//! * the in-memory [`DiGraph`] uses `&[NodeId]` itself — a zero-overhead
//!   slice return, so the fast path compiles to exactly the code it always
//!   was (the bench gate in CI holds this to within noise);
//! * a paged backend returns a *pin guard* that keeps the underlying buffer
//!   frame pinned (and therefore un-evictable) for as long as the caller
//!   reads the slice, unpinning on drop.
//!
//! Generic code therefore iterates as `graph.in_neighbors(v).iter()` (deref
//! coercion reaches the slice) and must not hold many guards at once: the
//! contract is **at most a few live guards per thread**, so a tiny buffer
//! pool never deadlocks against its own pins.
//!
//! ## Determinism contract
//!
//! Implementations must return the same neighbor lists (same order — sorted
//! ascending, like [`crate::CsrAdjacency`] guarantees) as the equivalent
//! in-memory CSR. Everything downstream — sorted workspace drains,
//! per-node RNG streams, row-sharded multiplies — then produces bit-identical
//! results regardless of the backend, which is what the in-memory-vs-paged
//! property tests pin.

use std::ops::Deref;
use std::sync::Arc;

use crate::digraph::DiGraph;
use crate::NodeId;

/// Read-only adjacency access for directed graphs with dense node ids
/// `0..num_nodes()`.
///
/// See the [module docs](self) for the guard-type and determinism contracts.
/// `Send + Sync` is a supertrait because every solver shards work across
/// scoped threads that share the graph.
pub trait NeighborAccess: Send + Sync {
    /// The neighbor-list guard: a slice for in-memory backends, a buffer-pool
    /// pin guard for paged ones.
    type Neighbors<'a>: Deref<Target = [NodeId]>
    where
        Self: 'a;

    /// Number of nodes; valid ids are `0..num_nodes()`.
    fn num_nodes(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> usize;

    /// Out-degree of `v` (must equal `out_neighbors(v).len()`), available
    /// without touching adjacency storage — kernels call this in hot loops.
    fn out_degree(&self, v: NodeId) -> usize;

    /// In-degree of `v` (must equal `in_neighbors(v).len()`), available
    /// without touching adjacency storage.
    fn in_degree(&self, v: NodeId) -> usize;

    /// The sorted out-neighbors of `v` (targets of edges `v → w`).
    fn out_neighbors(&self, v: NodeId) -> Self::Neighbors<'_>;

    /// The sorted in-neighbors of `v` (sources of edges `u → v`).
    fn in_neighbors(&self, v: NodeId) -> Self::Neighbors<'_>;

    /// `true` iff the edge `u → v` exists. The default binary-searches the
    /// out-neighbor list; backends with cheaper membership tests may override.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Bytes of this backend's state resident in RAM (for an in-memory CSR
    /// that is the whole graph; for a paged backend only the directory,
    /// offsets, and buffer pool).
    fn resident_bytes(&self) -> usize;
}

impl NeighborAccess for DiGraph {
    type Neighbors<'a> = &'a [NodeId];

    #[inline(always)]
    fn num_nodes(&self) -> usize {
        DiGraph::num_nodes(self)
    }

    #[inline(always)]
    fn num_edges(&self) -> usize {
        DiGraph::num_edges(self)
    }

    #[inline(always)]
    fn out_degree(&self, v: NodeId) -> usize {
        DiGraph::out_degree(self, v)
    }

    #[inline(always)]
    fn in_degree(&self, v: NodeId) -> usize {
        DiGraph::in_degree(self, v)
    }

    #[inline(always)]
    fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        DiGraph::out_neighbors(self, v)
    }

    #[inline(always)]
    fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        DiGraph::in_neighbors(self, v)
    }

    #[inline(always)]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        DiGraph::has_edge(self, u, v)
    }

    #[inline(always)]
    fn resident_bytes(&self) -> usize {
        DiGraph::memory_bytes(self)
    }
}

/// References delegate, so `ExactSim<&DiGraph>`-style borrowing handles keep
/// working exactly as under the old `G: Borrow<DiGraph>` bound.
impl<G: NeighborAccess> NeighborAccess for &G {
    type Neighbors<'a>
        = G::Neighbors<'a>
    where
        Self: 'a;

    #[inline(always)]
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    #[inline(always)]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline(always)]
    fn out_degree(&self, v: NodeId) -> usize {
        (**self).out_degree(v)
    }

    #[inline(always)]
    fn in_degree(&self, v: NodeId) -> usize {
        (**self).in_degree(v)
    }

    #[inline(always)]
    fn out_neighbors(&self, v: NodeId) -> Self::Neighbors<'_> {
        (**self).out_neighbors(v)
    }

    #[inline(always)]
    fn in_neighbors(&self, v: NodeId) -> Self::Neighbors<'_> {
        (**self).in_neighbors(v)
    }

    #[inline(always)]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        (**self).has_edge(u, v)
    }

    #[inline(always)]
    fn resident_bytes(&self) -> usize {
        (**self).resident_bytes()
    }
}

/// Shared-ownership handles delegate, so services can hold
/// `ExactSim<Arc<DiGraph>>` (or an `Arc` of any other backend) and clone the
/// handle into per-epoch solver instances.
impl<G: NeighborAccess> NeighborAccess for Arc<G> {
    type Neighbors<'a>
        = G::Neighbors<'a>
    where
        Self: 'a;

    #[inline(always)]
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    #[inline(always)]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline(always)]
    fn out_degree(&self, v: NodeId) -> usize {
        (**self).out_degree(v)
    }

    #[inline(always)]
    fn in_degree(&self, v: NodeId) -> usize {
        (**self).in_degree(v)
    }

    #[inline(always)]
    fn out_neighbors(&self, v: NodeId) -> Self::Neighbors<'_> {
        (**self).out_neighbors(v)
    }

    #[inline(always)]
    fn in_neighbors(&self, v: NodeId) -> Self::Neighbors<'_> {
        (**self).in_neighbors(v)
    }

    #[inline(always)]
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        (**self).has_edge(u, v)
    }

    #[inline(always)]
    fn resident_bytes(&self) -> usize {
        (**self).resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> DiGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        b.build()
    }

    /// Exercises a graph purely through the trait, as the solvers do.
    fn trait_summary<G: NeighborAccess>(g: &G) -> (usize, usize, Vec<NodeId>, Vec<NodeId>) {
        let mut outs = Vec::new();
        let mut ins = Vec::new();
        for v in 0..g.num_nodes() as NodeId {
            outs.extend(g.out_neighbors(v).iter().copied());
            ins.extend(g.in_neighbors(v).iter().copied());
        }
        (g.num_nodes(), g.num_edges(), outs, ins)
    }

    #[test]
    fn digraph_impl_matches_inherent_methods() {
        let g = sample();
        let (n, m, outs, ins) = trait_summary(&g);
        assert_eq!(n, 4);
        assert_eq!(m, 4);
        assert_eq!(outs, vec![2, 2, 3, 0]);
        assert_eq!(ins, vec![3, 0, 1, 2]);
        for v in 0..4u32 {
            assert_eq!(NeighborAccess::out_degree(&g, v), g.out_neighbors(v).len());
            assert_eq!(NeighborAccess::in_degree(&g, v), g.in_neighbors(v).len());
        }
        assert!(NeighborAccess::has_edge(&g, 0, 2));
        assert!(!NeighborAccess::has_edge(&g, 2, 0));
        assert_eq!(NeighborAccess::resident_bytes(&g), g.memory_bytes());
    }

    #[test]
    fn reference_and_arc_handles_delegate() {
        let g = sample();
        let direct = trait_summary(&g);
        let by_ref = trait_summary(&&g);
        let arc = Arc::new(sample());
        let by_arc = trait_summary(&arc);
        assert_eq!(direct, by_ref);
        assert_eq!(direct, by_arc);
    }
}
