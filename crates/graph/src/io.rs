//! Reading and writing graphs as plain-text edge lists.
//!
//! The format is the one used by the SNAP collection (and by the LAW graphs
//! after conversion): one edge per line, two whitespace-separated integer node
//! ids, `#`- or `%`-prefixed comment lines, blank lines ignored. Node ids in
//! the file may be arbitrary (non-contiguous) — they are remapped to dense
//! `0..n` ids on load, which is what every SimRank implementation in the
//! literature does as a preprocessing step.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::builder::{GraphBuilder, SelfLoopPolicy};
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::NodeId;

/// Options controlling edge-list parsing.
#[derive(Clone, Copy, Debug)]
pub struct EdgeListOptions {
    /// Treat the input as undirected: every line inserts both directions.
    pub undirected: bool,
    /// Drop or keep self-loops.
    pub self_loops: SelfLoopPolicy,
    /// Remove duplicate edges after loading.
    pub dedup: bool,
}

impl Default for EdgeListOptions {
    fn default() -> Self {
        EdgeListOptions {
            undirected: false,
            self_loops: SelfLoopPolicy::Drop,
            dedup: true,
        }
    }
}

/// The result of loading an edge list: the graph plus the mapping from the
/// original (file) node ids to the dense ids used internally.
#[derive(Clone, Debug)]
pub struct LoadedGraph {
    /// The dense-id graph.
    pub graph: DiGraph,
    /// `original_ids[dense_id]` is the node id that appeared in the file.
    pub original_ids: Vec<u64>,
}

impl LoadedGraph {
    /// Looks up the dense id of an original (file) node id, if present.
    pub fn dense_id_of(&self, original: u64) -> Option<NodeId> {
        // original_ids is sorted by construction only when input was sorted;
        // do a linear scan fallback via binary search attempt.
        self.original_ids
            .iter()
            .position(|&o| o == original)
            .map(|i| i as NodeId)
    }
}

/// Parses an edge list from an in-memory string. See the module docs for the format.
pub fn parse_edge_list(text: &str, options: EdgeListOptions) -> Result<LoadedGraph, GraphError> {
    parse_lines(text.lines().map(|l| Ok(l.to_owned())), options)
}

/// Reads an edge list from a file path. See the module docs for the format.
pub fn read_edge_list<P: AsRef<Path>>(
    path: P,
    options: EdgeListOptions,
) -> Result<LoadedGraph, GraphError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    parse_lines(reader.lines().map(|r| r.map_err(GraphError::from)), options)
}

fn parse_lines<I>(lines: I, options: EdgeListOptions) -> Result<LoadedGraph, GraphError>
where
    I: IntoIterator<Item = Result<String, GraphError>>,
{
    let mut raw_edges: Vec<(u64, u64)> = Vec::new();
    for (lineno, line) in lines.into_iter().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u = parse_field(it.next(), lineno + 1)?;
        let v = parse_field(it.next(), lineno + 1)?;
        // Extra columns (e.g. weights or timestamps) are tolerated and ignored.
        raw_edges.push((u, v));
    }

    // Remap to dense ids in order of first appearance, which keeps loading a
    // file with already-dense ids an identity mapping.
    let mut id_map: HashMap<u64, NodeId> = HashMap::with_capacity(raw_edges.len() / 2 + 1);
    let mut original_ids: Vec<u64> = Vec::new();
    let dense = |x: u64, id_map: &mut HashMap<u64, NodeId>, original_ids: &mut Vec<u64>| {
        *id_map.entry(x).or_insert_with(|| {
            let id = original_ids.len() as NodeId;
            original_ids.push(x);
            id
        })
    };
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(raw_edges.len());
    for (u, v) in raw_edges {
        let du = dense(u, &mut id_map, &mut original_ids);
        let dv = dense(v, &mut id_map, &mut original_ids);
        edges.push((du, dv));
    }

    let mut builder = GraphBuilder::with_capacity(original_ids.len(), edges.len())
        .dedup(options.dedup)
        .self_loop_policy(options.self_loops)
        .symmetric(options.undirected);
    for (u, v) in edges {
        builder.try_add_edge(u, v)?;
    }
    Ok(LoadedGraph {
        graph: builder.build(),
        original_ids,
    })
}

fn parse_field(field: Option<&str>, line: usize) -> Result<u64, GraphError> {
    let field = field.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two whitespace-separated node ids".into(),
    })?;
    field.parse::<u64>().map_err(|_| GraphError::Parse {
        line,
        message: format!("could not parse node id '{field}'"),
    })
}

/// Writes a graph as a plain edge list (`u<TAB>v` per line) with a header
/// comment recording `n` and `m`.
pub fn write_edge_list<P: AsRef<Path>>(graph: &DiGraph, path: P) -> Result<(), GraphError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(
        w,
        "# exactsim edge list: nodes={} edges={}",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for (u, v) in graph.iter_edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Serialises a graph to an edge-list string (mainly for tests and examples).
pub fn to_edge_list_string(graph: &DiGraph) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "# exactsim edge list: nodes={} edges={}\n",
        graph.num_nodes(),
        graph.num_edges()
    ));
    for (u, v) in graph.iter_edges() {
        s.push_str(&format!("{u}\t{v}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_directed_edge_list() {
        let text = "# comment\n0 1\n1 2\n2 0\n";
        let loaded = parse_edge_list(text, EdgeListOptions::default()).unwrap();
        let g = &loaded.graph;
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn remaps_sparse_node_ids() {
        let text = "100 200\n200 300\n";
        let loaded = parse_edge_list(text, EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), 3);
        assert_eq!(loaded.original_ids, vec![100, 200, 300]);
        assert_eq!(loaded.dense_id_of(200), Some(1));
        assert_eq!(loaded.dense_id_of(999), None);
    }

    #[test]
    fn undirected_option_symmetrises() {
        let text = "0 1\n";
        let opts = EdgeListOptions {
            undirected: true,
            ..Default::default()
        };
        let loaded = parse_edge_list(text, opts).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
        assert!(loaded.graph.has_edge(0, 1));
        assert!(loaded.graph.has_edge(1, 0));
    }

    #[test]
    fn ignores_comments_blank_lines_and_extra_columns() {
        let text = "% matrix-market style comment\n\n# snap comment\n0 1 0.5\n1 2 17\n";
        let loaded = parse_edge_list(text, EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
    }

    #[test]
    fn self_loops_dropped_by_default_kept_on_request() {
        let text = "0 0\n0 1\n";
        let loaded = parse_edge_list(text, EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);

        let opts = EdgeListOptions {
            self_loops: SelfLoopPolicy::Keep,
            ..Default::default()
        };
        let loaded = parse_edge_list(text, opts).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
    }

    #[test]
    fn duplicate_edges_deduped_by_default() {
        let text = "0 1\n0 1\n0 1\n";
        let loaded = parse_edge_list(text, EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 1);
        let opts = EdgeListOptions {
            dedup: false,
            ..Default::default()
        };
        let loaded = parse_edge_list(text, opts).unwrap();
        assert_eq!(loaded.graph.num_edges(), 3);
    }

    #[test]
    fn malformed_lines_report_line_numbers() {
        let text = "0 1\nnot_a_number 2\n";
        let err = parse_edge_list(text, EdgeListOptions::default()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_second_field_is_an_error() {
        let text = "0\n";
        let err = parse_edge_list(text, EdgeListOptions::default()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn round_trips_through_string_serialisation() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let text = to_edge_list_string(&g);
        let loaded = parse_edge_list(&text, EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_nodes(), g.num_nodes());
        assert_eq!(loaded.graph.num_edges(), g.num_edges());
        for (u, v) in g.iter_edges() {
            assert!(loaded.graph.has_edge(u, v));
        }
    }

    #[test]
    fn file_round_trip() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let dir = std::env::temp_dir();
        let path = dir.join("exactsim_io_roundtrip_test.edges");
        write_edge_list(&g, &path).unwrap();
        let loaded = read_edge_list(&path, EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list(
            "/definitely/not/a/real/path.edges",
            EdgeListOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
