//! # exactsim-graph
//!
//! Directed-graph substrate for the ExactSim SimRank reproduction
//! (SIGMOD 2020, "Exact Single-Source SimRank Computation on Large Graphs").
//!
//! Everything the SimRank algorithms need from a graph lives here:
//!
//! * [`NeighborAccess`] — the storage/compute seam: read-only adjacency
//!   access (counts, degrees, sorted neighbor lists behind a deref guard)
//!   that every kernel and solver is generic over, so in-memory CSR and
//!   buffer-managed paged backends are interchangeable.
//! * [`DiGraph`] — a compressed-sparse-row directed graph that materialises
//!   *both* orientations (out-edges and in-edges). SimRank's √c-walks follow
//!   in-edges; the Linearization family needs both `P·x` and `Pᵀ·x`.
//! * [`GraphBuilder`] — incremental construction with deduplication and
//!   undirected symmetrisation.
//! * [`io`] — plain-text edge-list reading/writing (SNAP-compatible) so the
//!   real datasets of the paper can be dropped in when available.
//! * [`binfmt`] — a compact, validated binary codec for [`DiGraph`], the
//!   payload format of the `exactsim-store` snapshot persistence layer.
//! * [`generators`] — deterministic synthetic graph generators (Erdős–Rényi,
//!   Barabási–Albert, power-law configuration model, stochastic block model,
//!   and regular families) used as stand-ins for the SNAP/LAW datasets.
//! * [`analysis`] — degree statistics, connected components and PageRank.
//! * [`partition`] — the deterministic node-to-shard assignment of the
//!   sharded serving tier ([`PartitionMap`]), a pure function of
//!   `(node, num_shards)` shared by routers and shard processes.
//! * [`linalg`] — dense/sparse vectors and the transition-matrix kernels
//!   `P·x` and `Pᵀ·x` that every Linearization-style algorithm is built on.
//!
//! ## Conventions
//!
//! Nodes are dense indices `0..n` of type [`NodeId`] (`u32`). An edge `(u, v)`
//! means `u → v`; consequently `u` is an *in-neighbor* of `v` and `v` is an
//! *out-neighbor* of `u`. The (reverse) transition matrix `P` of the paper is
//! defined by `P(i, j) = 1 / din(j)` whenever `i ∈ I(j)` (i.e. the edge
//! `i → j` exists), and the distribution of a random walk that repeatedly
//! jumps to a uniformly random in-neighbor evolves as `x ← P · x`.
//!
//! ```
//! use exactsim_graph::{GraphBuilder, linalg};
//!
//! // A tiny citation-style graph: 0 -> 2, 1 -> 2, 2 -> 3.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 2);
//! b.add_edge(1, 2);
//! b.add_edge(2, 3);
//! let g = b.build();
//!
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.in_degree(2), 2);
//! assert_eq!(g.in_neighbors(3), &[2]);
//!
//! // One step of the reverse transition operator from node 3:
//! let e3 = linalg::unit_vector(4, 3);
//! let mut step = vec![0.0; 4];
//! linalg::p_multiply(&g, &e3, &mut step);
//! assert!((step[2] - 1.0).abs() < 1e-12); // all mass flows to 3's in-neighbor 2
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![warn(clippy::all)]

pub mod access;
pub mod analysis;
pub mod binfmt;
pub mod builder;
pub mod csr;
pub mod digraph;
pub mod error;
pub mod generators;
pub mod io;
pub mod linalg;
pub mod partition;

pub use access::NeighborAccess;
pub use builder::GraphBuilder;
pub use csr::CsrAdjacency;
pub use digraph::DiGraph;
pub use error::GraphError;
pub use linalg::SparseVec;
pub use partition::PartitionMap;

/// Dense node identifier. Nodes of an `n`-node graph are `0..n`.
///
/// `u32` keeps adjacency arrays compact (the largest graph in the paper has
/// ~4.2 × 10⁷ nodes, well inside `u32`).
pub type NodeId = u32;

/// Convenience conversion from a [`NodeId`] to a `usize` index.
#[inline(always)]
pub fn idx(v: NodeId) -> usize {
    v as usize
}
