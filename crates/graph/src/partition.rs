//! Deterministic node-to-shard partitioning for the sharded serving tier.
//!
//! A [`PartitionMap`] assigns every node id an *owning shard* with a pure
//! function of `(node, num_shards)` — no table, no state, no I/O. That
//! purity is a wire contract: the router and every shard process must agree
//! on ownership without exchanging a partition table, and a plain
//! `simrank-serve` can answer a shard-restricted request (`shardtopk`) for
//! any `(shard, num_shards)` pair it is handed, because ownership is
//! recomputable from the request alone.
//!
//! The assignment is a Fibonacci multiply-shift hash of the node id reduced
//! modulo the shard count. Consecutive node ids therefore scatter across
//! shards (a range split would put every high-degree hub of a
//! preferential-attachment graph — the low ids — on shard 0), and the map
//! stays balanced within a fraction of a percent for any realistic `n`.
//!
//! Changing this function is a protocol break for deployed sharded tiers:
//! a router and a shard disagreeing on ownership would silently drop
//! candidates from scatter/gathered top-k answers. The unit tests pin the
//! exact assignment for a handful of ids so an accidental change fails
//! loudly.

use crate::NodeId;

/// The multiplicative constant of the Fibonacci hash: `2^64 / φ`, odd, with
/// well-mixed high bits (Knuth, TAOCP vol. 3 §6.4).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Returns the shard owning `node` in a `num_shards`-way partition.
///
/// Pure and total: every `(node, num_shards ≥ 1)` pair maps to a shard in
/// `0..num_shards`, identically in every process that links this crate.
#[inline]
pub fn shard_of(node: NodeId, num_shards: usize) -> usize {
    debug_assert!(num_shards >= 1, "a partition needs at least one shard");
    if num_shards <= 1 {
        return 0;
    }
    // Multiply-shift spreads the low-entropy id through the high bits; the
    // final modulo keeps the map total for any shard count (shard counts are
    // tiny, so the modulo bias over 32 hashed bits is negligible).
    let mixed = (node as u64).wrapping_mul(FIB) >> 32;
    (mixed % num_shards as u64) as usize
}

/// A deterministic `num_shards`-way node partition.
///
/// Thin, copyable wrapper around [`shard_of`] carrying the shard count, so
/// callers pass one value instead of threading a bare `usize` whose meaning
/// the type system cannot check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionMap {
    num_shards: usize,
}

impl PartitionMap {
    /// Creates a partition over `num_shards` shards.
    ///
    /// # Panics
    /// If `num_shards` is zero — an empty partition owns nothing and every
    /// caller would have to special-case it.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "a partition needs at least one shard");
        PartitionMap { num_shards }
    }

    /// Number of shards in the partition.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `node`.
    #[inline]
    pub fn owner(&self, node: NodeId) -> usize {
        shard_of(node, self.num_shards)
    }

    /// Whether `shard` owns `node`.
    #[inline]
    pub fn owns(&self, shard: usize, node: NodeId) -> bool {
        self.owner(node) == shard
    }

    /// The nodes of `0..n` owned by `shard`, ascending.
    pub fn owned_nodes(&self, shard: usize, n: usize) -> Vec<NodeId> {
        (0..n as NodeId)
            .filter(|&node| self.owner(node) == shard)
            .collect()
    }

    /// How many of the nodes `0..n` each shard owns (balance diagnostics).
    pub fn shard_sizes(&self, n: usize) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_shards];
        for node in 0..n as NodeId {
            sizes[self.owner(node)] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_owns_everything() {
        let p = PartitionMap::new(1);
        for node in [0u32, 1, 17, 4_294_967_295] {
            assert_eq!(p.owner(node), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        PartitionMap::new(0);
    }

    #[test]
    fn every_node_lands_in_range_and_deterministically() {
        for shards in 1..=8 {
            let p = PartitionMap::new(shards);
            for node in 0..5_000u32 {
                let owner = p.owner(node);
                assert!(owner < shards);
                assert_eq!(owner, p.owner(node), "pure function of the id");
                assert_eq!(owner, shard_of(node, shards), "wrapper == free fn");
                assert!(p.owns(owner, node));
            }
        }
    }

    #[test]
    fn owned_nodes_partition_the_id_space_exactly() {
        let n = 3_000;
        let p = PartitionMap::new(4);
        let mut seen = vec![false; n];
        for shard in 0..4 {
            for node in p.owned_nodes(shard, n) {
                assert!(!seen[node as usize], "node {node} owned twice");
                seen[node as usize] = true;
                assert_eq!(p.owner(node), shard);
            }
        }
        assert!(seen.into_iter().all(|s| s), "every node is owned");
    }

    #[test]
    fn shards_stay_balanced() {
        let n = 100_000;
        for shards in [2usize, 3, 4, 7] {
            let sizes = PartitionMap::new(shards).shard_sizes(n);
            assert_eq!(sizes.iter().sum::<usize>(), n);
            let ideal = n / shards;
            for (shard, &size) in sizes.iter().enumerate() {
                let skew = (size as f64 - ideal as f64).abs() / ideal as f64;
                assert!(
                    skew < 0.05,
                    "shard {shard}/{shards} holds {size} of {n} (skew {skew:.3})"
                );
            }
        }
    }

    #[test]
    fn consecutive_ids_scatter_across_shards() {
        // The hub guard: BA generators hand low ids the highest degrees, so
        // a contiguous split would concentrate them. The hash must not.
        let p = PartitionMap::new(4);
        let first_sixteen: Vec<usize> = (0..16u32).map(|v| p.owner(v)).collect();
        for shard in 0..4 {
            assert!(
                first_sixteen.contains(&shard),
                "shard {shard} owns none of the first 16 ids: {first_sixteen:?}"
            );
        }
    }

    #[test]
    fn assignment_is_pinned_as_a_wire_contract() {
        // Changing shard_of silently would desynchronize routers and shards
        // that were built from different revisions. Pin a sample.
        let p = PartitionMap::new(4);
        let assigned: Vec<usize> = (0..8u32).map(|v| p.owner(v)).collect();
        assert_eq!(assigned, vec![0, 1, 2, 0, 1, 3, 0, 2]);
    }
}
