//! The directed graph type used by every SimRank algorithm.

use crate::csr::CsrAdjacency;
use crate::NodeId;

/// A directed graph with both orientations materialised in CSR form.
///
/// SimRank's random-walk interpretation walks *backwards* along edges (to a
/// uniformly random in-neighbor), while the Linearization family of algorithms
/// needs both `P·x` (mass flowing from a node to its in-neighbors) and `Pᵀ·x`
/// (averaging over in-neighbors). Storing the out-CSR and the in-CSR side by
/// side makes both directions `O(deg)` with contiguous memory access.
///
/// The structure is immutable after construction; build it with
/// [`crate::GraphBuilder`] or one of the [`crate::generators`].
#[derive(Clone, Debug)]
pub struct DiGraph {
    num_nodes: usize,
    num_edges: usize,
    out_adj: CsrAdjacency,
    in_adj: CsrAdjacency,
}

impl DiGraph {
    /// Assembles a graph from pre-built CSR orientations.
    ///
    /// `out_adj` stores edges as `u → v` under source `u`; `in_adj` stores the
    /// same edges under target `v`. Both must cover the same node count and
    /// edge count (checked by debug assertions).
    pub fn from_csr(out_adj: CsrAdjacency, in_adj: CsrAdjacency) -> Self {
        debug_assert_eq!(out_adj.num_nodes(), in_adj.num_nodes());
        debug_assert_eq!(out_adj.num_edges(), in_adj.num_edges());
        DiGraph {
            num_nodes: out_adj.num_nodes(),
            num_edges: out_adj.num_edges(),
            out_adj,
            in_adj,
        }
    }

    /// Convenience constructor from an explicit edge list.
    ///
    /// Node ids must be `< num_nodes`. Duplicate edges are kept as-is; use
    /// [`crate::GraphBuilder`] for deduplication and validation.
    pub fn from_edges(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let out_adj = CsrAdjacency::from_edges(num_nodes, edges.iter().copied());
        let in_adj = CsrAdjacency::from_edges(num_nodes, edges.iter().map(|&(u, v)| (v, u)));
        DiGraph::from_csr(out_adj, in_adj)
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `true` iff the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_nodes == 0
    }

    /// In-degree `din(v)`: the number of edges `u → v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_adj.degree(v)
    }

    /// Out-degree `dout(v)`: the number of edges `v → w`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_adj.degree(v)
    }

    /// In-neighbors `I(v)` — the sources of edges pointing at `v` (sorted).
    #[inline]
    pub fn in_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.in_adj.neighbors(v)
    }

    /// Out-neighbors `O(v)` — the targets of edges leaving `v` (sorted).
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        self.out_adj.neighbors(v)
    }

    /// `true` iff the directed edge `u → v` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        // Use the smaller adjacency list for the binary search.
        if self.out_degree(u) <= self.in_degree(v) {
            self.out_adj.has_edge(u, v)
        } else {
            self.in_adj.has_edge(v, u)
        }
    }

    /// Iterates over all edges `(u, v)` meaning `u → v`, grouped by source.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out_adj.iter_edges()
    }

    /// Iterates over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes as NodeId
    }

    /// The out-orientation CSR (edges keyed by source).
    #[inline]
    pub fn out_csr(&self) -> &CsrAdjacency {
        &self.out_adj
    }

    /// The in-orientation CSR (edges keyed by target).
    #[inline]
    pub fn in_csr(&self) -> &CsrAdjacency {
        &self.in_adj
    }

    /// Returns a copy of this graph with `additional` extra isolated nodes
    /// appended at the top of the id space (`n .. n + additional`).
    ///
    /// The edge set is unchanged; both CSR orientations just extend their
    /// offsets arrays ([`CsrAdjacency::grow`]). This is the store's `addnode`
    /// growth path: grow first, then [`DiGraph::apply_delta`] may attach
    /// edges to the new ids in the same commit.
    pub fn grow(&self, additional: usize) -> DiGraph {
        DiGraph {
            num_nodes: self.num_nodes + additional,
            num_edges: self.num_edges,
            out_adj: self.out_adj.grow(additional),
            in_adj: self.in_adj.grow(additional),
        }
    }

    /// Returns the transposed graph (every edge reversed).
    pub fn transpose(&self) -> DiGraph {
        DiGraph {
            num_nodes: self.num_nodes,
            num_edges: self.num_edges,
            out_adj: self.in_adj.clone(),
            in_adj: self.out_adj.clone(),
        }
    }

    /// Number of nodes with `din(v) = 0` ("dangling" for the backward walk).
    pub fn count_sources(&self) -> usize {
        self.nodes().filter(|&v| self.in_degree(v) == 0).count()
    }

    /// Number of nodes with `dout(v) = 0` (sinks).
    pub fn count_sinks(&self) -> usize {
        self.nodes().filter(|&v| self.out_degree(v) == 0).count()
    }

    /// Average in-degree `m / n` (0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_nodes as f64
        }
    }

    /// Maximum in-degree over all nodes (0 for the empty graph).
    pub fn max_in_degree(&self) -> usize {
        self.nodes().map(|v| self.in_degree(v)).max().unwrap_or(0)
    }

    /// Maximum out-degree over all nodes (0 for the empty graph).
    pub fn max_out_degree(&self) -> usize {
        self.nodes().map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// Approximate heap footprint of the graph structure in bytes.
    ///
    /// This is what the paper's Table 3 calls the "graph size": the memory
    /// needed to hold both CSR orientations.
    pub fn memory_bytes(&self) -> usize {
        self.out_adj.memory_bytes() + self.in_adj.memory_bytes()
    }

    /// Rebuilds the graph with a batch of edge insertions and deletions
    /// applied to *both* CSR orientations in one `O(m + Δ log Δ)` pass —
    /// the delta→CSR path used by epoch-based dynamic stores, which is much
    /// cheaper than re-sorting the full edge list.
    ///
    /// `insertions` and `deletions` must be sorted by `(source, target)` and
    /// duplicate-free (the in-orientation copies are re-sorted internally).
    /// Endpoints must be `< num_nodes`; deletions remove every stored
    /// occurrence of their edge, and deletions of absent edges are ignored.
    /// Inserting an edge that is already present stores a parallel copy, so
    /// set-semantics callers must pre-filter with [`DiGraph::has_edge`].
    pub fn apply_delta(
        &self,
        insertions: &[(NodeId, NodeId)],
        deletions: &[(NodeId, NodeId)],
    ) -> DiGraph {
        let out_adj = self.out_adj.apply_delta(insertions, deletions);
        let flip = |edges: &[(NodeId, NodeId)]| {
            let mut flipped: Vec<(NodeId, NodeId)> = edges.iter().map(|&(u, v)| (v, u)).collect();
            flipped.sort_unstable();
            flipped
        };
        let in_adj = self.in_adj.apply_delta(&flip(insertions), &flip(deletions));
        DiGraph::from_csr(out_adj, in_adj)
    }

    /// Validates internal consistency (both orientations describe the same
    /// edge multiset). Intended for tests and debugging; `O(m log m)`.
    pub fn validate(&self) -> bool {
        if self.out_adj.num_edges() != self.in_adj.num_edges() {
            return false;
        }
        let mut fwd: Vec<(NodeId, NodeId)> = self.out_adj.iter_edges().collect();
        let mut bwd: Vec<(NodeId, NodeId)> =
            self.in_adj.iter_edges().map(|(v, u)| (u, v)).collect();
        fwd.sort_unstable();
        bwd.sort_unstable();
        fwd == bwd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4-node "paper" example: 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 0.
    fn sample() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)])
    }

    #[test]
    fn basic_counts() {
        let g = sample();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_empty());
        assert!((g.average_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grow_appends_isolated_nodes_without_touching_edges() {
        let g = sample();
        let grown = g.grow(3);
        assert_eq!(grown.num_nodes(), 7);
        assert_eq!(grown.num_edges(), 4);
        assert!(grown.validate());
        for v in 4..7 {
            assert_eq!(grown.in_degree(v), 0);
            assert_eq!(grown.out_degree(v), 0);
        }
        assert!(grown.has_edge(0, 2));
        // Edges may then attach to the new ids via the delta path.
        let attached = grown.grow(0).apply_delta(&[(4, 0), (5, 6)], &[]);
        assert!(attached.validate());
        assert!(attached.has_edge(5, 6));
        assert_eq!(attached.in_degree(0), 2);
    }

    #[test]
    fn degrees_and_neighbors_are_consistent() {
        let g = sample();
        assert_eq!(g.in_degree(2), 2);
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.out_neighbors(2), &[3]);
        assert_eq!(g.in_degree(1), 0);
        assert_eq!(g.in_neighbors(1), &[] as &[NodeId]);
    }

    #[test]
    fn has_edge_checks_direction() {
        let g = sample();
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn transpose_reverses_all_edges() {
        let g = sample();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        for (u, v) in g.iter_edges() {
            assert!(t.has_edge(v, u));
        }
        assert!(t.validate());
    }

    #[test]
    fn source_and_sink_counts() {
        let g = sample();
        assert_eq!(g.count_sources(), 1); // node 1 has no in-edges
        assert_eq!(g.count_sinks(), 0); // every node has at least one out-edge
        let with_sink = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(with_sink.count_sinks(), 1); // node 2 has no out-edges
        assert_eq!(with_sink.count_sources(), 1); // node 0 has no in-edges
    }

    #[test]
    fn max_degrees() {
        let g = sample();
        assert_eq!(g.max_in_degree(), 2);
        assert_eq!(g.max_out_degree(), 1);
    }

    #[test]
    fn validate_detects_consistency() {
        let g = sample();
        assert!(g.validate());
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        assert!(g.is_empty());
        assert_eq!(g.count_sources(), 0);
        assert_eq!(g.max_in_degree(), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert!(g.validate());
    }

    #[test]
    fn isolated_nodes_are_allowed() {
        let g = DiGraph::from_edges(10, &[(0, 1)]);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.in_degree(9), 0);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn nodes_iterator_covers_all() {
        let g = sample();
        let nodes: Vec<_> = g.nodes().collect();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn apply_delta_updates_both_orientations_consistently() {
        let g = sample(); // 0 -> 2, 1 -> 2, 2 -> 3, 3 -> 0
        let updated = g.apply_delta(&[(0, 1), (3, 2)], &[(1, 2)]);
        assert_eq!(updated.num_edges(), 5);
        assert!(updated.has_edge(0, 1));
        assert!(updated.has_edge(3, 2));
        assert!(!updated.has_edge(1, 2));
        assert!(updated.validate(), "orientations must stay in sync");
        assert_eq!(updated.in_neighbors(2), &[0, 3]);
        // The base graph is an untouched snapshot.
        assert!(g.has_edge(1, 2));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn apply_delta_equals_from_scratch_construction() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let updated = g.apply_delta(&[(0, 3), (2, 5), (4, 1)], &[(1, 2), (5, 0)]);
        let fresh =
            DiGraph::from_edges(6, &[(0, 1), (0, 3), (2, 3), (2, 5), (3, 4), (4, 1), (4, 5)]);
        assert_eq!(updated.out_csr(), fresh.out_csr());
        assert_eq!(updated.in_csr(), fresh.in_csr());
    }

    #[test]
    fn memory_accounting_scales_with_edges() {
        let small = DiGraph::from_edges(4, &[(0, 1)]);
        let big = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]);
        assert!(big.memory_bytes() > small.memory_bytes());
    }
}
