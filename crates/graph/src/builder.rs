//! Incremental graph construction with validation.

use crate::csr::CsrAdjacency;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::NodeId;

/// How the builder treats self-loops `v → v`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Keep self-loops (SimRank's definition tolerates them; the in-neighbor
    /// set of `v` then contains `v` itself).
    Keep,
    /// Silently drop self-loops. This matches the preprocessing commonly
    /// applied to the SNAP datasets in the SimRank literature.
    #[default]
    Drop,
}

/// Incremental builder for [`DiGraph`].
///
/// The builder accepts edges in any order, optionally symmetrises them
/// (undirected input), deduplicates parallel edges, and applies a
/// [`SelfLoopPolicy`]. The resulting [`DiGraph`] is immutable.
///
/// ```
/// use exactsim_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(0, 1); // duplicate — removed by default
/// b.add_edge(1, 1); // self loop — dropped by default
/// b.add_edge(2, 0);
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
    dedup: bool,
    self_loops: SelfLoopPolicy,
    symmetric: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with exactly `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            dedup: true,
            self_loops: SelfLoopPolicy::default(),
            symmetric: false,
        }
    }

    /// Creates a builder and pre-allocates space for `num_edges` edges.
    pub fn with_capacity(num_nodes: usize, num_edges: usize) -> Self {
        let mut b = GraphBuilder::new(num_nodes);
        b.edges.reserve(num_edges);
        b
    }

    /// Disables / enables removal of duplicate (parallel) edges. Default: enabled.
    pub fn dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Sets the self-loop policy. Default: [`SelfLoopPolicy::Drop`].
    pub fn self_loop_policy(mut self, policy: SelfLoopPolicy) -> Self {
        self.self_loops = policy;
        self
    }

    /// Treats every added edge as undirected: `add_edge(u, v)` also inserts
    /// `v → u`. This is how the paper handles the undirected datasets
    /// (ca-GrQc, CA-HepTh, CA-HepPh, DBLP-Author).
    pub fn symmetric(mut self, symmetric: bool) -> Self {
        self.symmetric = symmetric;
        self
    }

    /// Number of nodes this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edge insertions accepted so far (before dedup).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `u → v` (plus `v → u` in symmetric mode).
    ///
    /// # Panics
    /// Panics if `u` or `v` is `>= num_nodes`. Use [`GraphBuilder::try_add_edge`]
    /// for fallible insertion.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        self.try_add_edge(u, v)
            .expect("edge endpoints must be < num_nodes");
    }

    /// Adds the directed edge `u → v`, returning an error if an endpoint is
    /// out of range.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let n = self.num_nodes as u64;
        for &x in &[u, v] {
            if (x as u64) >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: x as u64,
                    num_nodes: n,
                });
            }
        }
        if u == v && self.self_loops == SelfLoopPolicy::Drop {
            return Ok(());
        }
        self.edges.push((u, v));
        if self.symmetric && u != v {
            self.edges.push((v, u));
        }
        Ok(())
    }

    /// Adds every edge from an iterator. See [`GraphBuilder::add_edge`].
    pub fn extend_edges<I>(&mut self, edges: I)
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Finalises the graph.
    pub fn build(mut self) -> DiGraph {
        if self.dedup {
            self.edges.sort_unstable();
            self.edges.dedup();
        }
        let out_adj = CsrAdjacency::from_edges(self.num_nodes, self.edges.iter().copied());
        let in_adj =
            CsrAdjacency::from_edges(self.num_nodes, self.edges.iter().map(|&(u, v)| (v, u)));
        DiGraph::from_csr(out_adj, in_adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deduplicates_by_default() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn keeps_duplicates_when_asked() {
        let mut b = GraphBuilder::new(3).dedup(false);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_neighbors(0), &[1, 1]);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let mut b = GraphBuilder::new(2).self_loop_policy(SelfLoopPolicy::Keep);
        b.add_edge(0, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 0));
        assert_eq!(g.in_degree(0), 1);
    }

    #[test]
    fn symmetric_mode_doubles_edges() {
        let mut b = GraphBuilder::new(3).symmetric(true);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 1));
    }

    #[test]
    fn symmetric_self_loop_not_doubled() {
        let mut b = GraphBuilder::new(2)
            .symmetric(true)
            .self_loop_policy(SelfLoopPolicy::Keep);
        b.add_edge(1, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn out_of_range_is_an_error() {
        let mut b = GraphBuilder::new(2);
        let err = b.try_add_edge(0, 5).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { node: 5, .. }));
        assert_eq!(b.num_pending_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "num_nodes")]
    fn add_edge_panics_on_out_of_range() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 3);
    }

    #[test]
    fn extend_edges_works() {
        let mut b = GraphBuilder::new(4);
        b.extend_edges(vec![(0, 1), (1, 2), (2, 3)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn with_capacity_builds_same_graph() {
        let mut a = GraphBuilder::new(3);
        a.add_edge(0, 1);
        let mut b = GraphBuilder::with_capacity(3, 10);
        b.add_edge(0, 1);
        let (ga, gb) = (a.build(), b.build());
        assert_eq!(ga.num_edges(), gb.num_edges());
        assert_eq!(ga.num_nodes(), gb.num_nodes());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
    }
}
