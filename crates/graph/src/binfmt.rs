//! A compact, versionless binary codec for [`DiGraph`].
//!
//! This is the *payload* format used by the persistence layer
//! (`exactsim-store`): the store wraps these bytes in a versioned,
//! checksummed snapshot file, so the codec itself stays minimal — it
//! serializes exactly the information needed to reconstruct a graph
//! bit-identically and validates every structural invariant on decode.
//!
//! ## Layout (little-endian throughout)
//!
//! ```text
//! num_nodes  u64
//! num_edges  u64
//! offsets    u64 × (num_nodes + 1)   out-CSR offsets
//! targets    u32 × num_edges         out-CSR targets (sorted per source)
//! ```
//!
//! Only the out-orientation is stored: the in-orientation is a pure function
//! of it, and rebuilding it on decode ([`CsrAdjacency::from_edges`] sorts
//! every neighbor list) reproduces the original in-CSR exactly, because both
//! are the sorted form of the same edge multiset. This halves the on-disk
//! size relative to storing both orientations.
//!
//! Decoding never trusts the input: lengths, offset monotonicity, and target
//! ranges are all checked, and any violation is a typed
//! [`GraphError::Decode`] — never a panic or a structurally invalid graph.

use crate::csr::CsrAdjacency;
use crate::digraph::DiGraph;
use crate::error::GraphError;
use crate::NodeId;

/// Serializes `graph` into `out` (appending). See the module docs for the
/// layout. The encoding is deterministic: equal graphs produce equal bytes.
pub fn encode_digraph(graph: &DiGraph, out: &mut Vec<u8>) {
    let csr = graph.out_csr();
    out.reserve(16 + 8 * csr.offsets().len() + 4 * csr.targets().len());
    out.extend_from_slice(&(graph.num_nodes() as u64).to_le_bytes());
    out.extend_from_slice(&(graph.num_edges() as u64).to_le_bytes());
    for &offset in csr.offsets() {
        out.extend_from_slice(&(offset as u64).to_le_bytes());
    }
    for &target in csr.targets() {
        out.extend_from_slice(&target.to_le_bytes());
    }
}

/// The exact encoded size of `graph` in bytes.
pub fn encoded_len(graph: &DiGraph) -> usize {
    16 + 8 * (graph.num_nodes() + 1) + 4 * graph.num_edges()
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], GraphError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(GraphError::Decode(format!(
                "truncated input: needed {n} bytes for {what} at offset {}, only {} remain",
                self.pos,
                self.bytes.len() - self.pos
            ))),
        }
    }

    fn u64(&mut self, what: &str) -> Result<u64, GraphError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn u32(&mut self, what: &str) -> Result<u32, GraphError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

/// Decodes a graph previously written by [`encode_digraph`], validating
/// every structural invariant (see the module docs). The whole input must be
/// consumed: trailing bytes are an error, so a truncated or padded payload
/// can never decode successfully.
pub fn decode_digraph(bytes: &[u8]) -> Result<DiGraph, GraphError> {
    let mut r = Reader { bytes, pos: 0 };
    let num_nodes = r.u64("num_nodes")?;
    let num_edges = r.u64("num_edges")?;
    let n = usize::try_from(num_nodes)
        .map_err(|_| GraphError::Decode(format!("num_nodes {num_nodes} exceeds usize")))?;
    let m = usize::try_from(num_edges)
        .map_err(|_| GraphError::Decode(format!("num_edges {num_edges} exceeds usize")))?;
    // Cheap structural bound before allocating: the remaining byte count must
    // match the declared shape exactly.
    let expected = n
        .checked_add(1)
        .and_then(|n1| n1.checked_mul(8))
        .and_then(|o| m.checked_mul(4).and_then(|t| o.checked_add(t)))
        .ok_or_else(|| GraphError::Decode("declared sizes overflow".to_string()))?;
    if bytes.len() - r.pos != expected {
        return Err(GraphError::Decode(format!(
            "payload length mismatch: {} bytes after header, expected {expected} \
             for {n} nodes / {m} edges",
            bytes.len() - r.pos
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let offset = r.u64("offset")?;
        let offset = usize::try_from(offset)
            .map_err(|_| GraphError::Decode(format!("offset {offset} exceeds usize")))?;
        if let Some(&prev) = offsets.last() {
            if offset < prev {
                return Err(GraphError::Decode(format!(
                    "offsets not monotonic at index {i}: {offset} < {prev}"
                )));
            }
        } else if offset != 0 {
            return Err(GraphError::Decode(format!(
                "first offset must be 0, found {offset}"
            )));
        }
        offsets.push(offset);
    }
    if *offsets.last().expect("n + 1 offsets") != m {
        return Err(GraphError::Decode(format!(
            "final offset {} does not match num_edges {m}",
            offsets.last().expect("n + 1 offsets")
        )));
    }
    let mut targets: Vec<NodeId> = Vec::with_capacity(m);
    for _ in 0..m {
        let target = r.u32("target")?;
        if u64::from(target) >= num_nodes {
            return Err(GraphError::Decode(format!(
                "target {target} out of range for {num_nodes} nodes"
            )));
        }
        targets.push(target);
    }
    // Per-source neighbor lists must be sorted (the encoder always writes
    // them sorted; anything else is corruption).
    for v in 0..n {
        let list = &targets[offsets[v]..offsets[v + 1]];
        if list.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Decode(format!(
                "neighbor list of node {v} is not sorted"
            )));
        }
    }
    let out_adj = CsrAdjacency::from_raw_parts(offsets, targets);
    // The in-orientation is rebuilt from the edge multiset; from_edges sorts
    // every list, so this is bit-identical to the in-CSR the graph was
    // originally built with.
    let in_adj = CsrAdjacency::from_edges(n, out_adj.iter_edges().map(|(u, v)| (v, u)));
    Ok(DiGraph::from_csr(out_adj, in_adj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;

    fn sample() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 2), (1, 2), (2, 3), (3, 0)])
    }

    fn encode(graph: &DiGraph) -> Vec<u8> {
        let mut bytes = Vec::new();
        encode_digraph(graph, &mut bytes);
        bytes
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for graph in [
            sample(),
            DiGraph::from_edges(0, &[]),
            DiGraph::from_edges(7, &[]),
            barabasi_albert(200, 3, true, 42).unwrap(),
        ] {
            let bytes = encode(&graph);
            assert_eq!(bytes.len(), encoded_len(&graph));
            let decoded = decode_digraph(&bytes).unwrap();
            assert_eq!(decoded.out_csr(), graph.out_csr());
            assert_eq!(decoded.in_csr(), graph.in_csr());
            assert!(decoded.validate());
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = barabasi_albert(100, 2, true, 7).unwrap();
        assert_eq!(encode(&g), encode(&g.clone()));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = encode(&sample());
        for cut in [0, 7, 15, 16, bytes.len() - 1] {
            let err = decode_digraph(&bytes[..cut]).unwrap_err();
            assert!(matches!(err, GraphError::Decode(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&sample());
        bytes.push(0);
        assert!(matches!(decode_digraph(&bytes), Err(GraphError::Decode(_))));
    }

    #[test]
    fn out_of_range_target_is_rejected() {
        let mut bytes = encode(&sample());
        let last_target = bytes.len() - 4;
        bytes[last_target..].copy_from_slice(&99u32.to_le_bytes());
        let err = decode_digraph(&bytes).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn non_monotonic_offsets_are_rejected() {
        let mut bytes = encode(&sample());
        // Offsets start at byte 16; corrupt the second one (index 1) to a
        // huge value so monotonicity breaks at index 2.
        bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = decode_digraph(&bytes).unwrap_err();
        assert!(matches!(err, GraphError::Decode(_)), "{err}");
    }

    #[test]
    fn unsorted_neighbor_list_is_rejected() {
        // 0 -> {1, 2} encoded with the list reversed.
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 2)]);
        let mut bytes = encode(&g);
        let targets_start = bytes.len() - 8;
        bytes[targets_start..targets_start + 4].copy_from_slice(&2u32.to_le_bytes());
        bytes[targets_start + 4..].copy_from_slice(&1u32.to_le_bytes());
        let err = decode_digraph(&bytes).unwrap_err();
        assert!(err.to_string().contains("not sorted"), "{err}");
    }

    #[test]
    fn huge_declared_sizes_are_rejected_without_panicking() {
        // A corrupt header declaring astronomically large counts must come
        // back as a typed Decode error — the size arithmetic is checked, so
        // this cannot panic even with debug overflow checks on.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // num_nodes
        bytes.extend_from_slice(&u64::MAX.to_le_bytes()); // num_edges
        assert!(matches!(decode_digraph(&bytes), Err(GraphError::Decode(_))));
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&(u64::MAX / 4).to_le_bytes());
        assert!(matches!(decode_digraph(&bytes), Err(GraphError::Decode(_))));
    }

    #[test]
    fn declared_size_mismatch_is_rejected() {
        let mut bytes = encode(&sample());
        // Claim one more edge than the payload carries.
        bytes[8..16].copy_from_slice(&5u64.to_le_bytes());
        assert!(matches!(decode_digraph(&bytes), Err(GraphError::Decode(_))));
    }
}
