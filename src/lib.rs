//! Workspace umbrella crate for the ExactSim reproduction.
//!
//! All functionality lives in the member crates:
//!
//! * `exactsim-graph` — the directed-graph substrate;
//! * `exactsim` — ExactSim itself plus every baseline algorithm;
//! * `exactsim-datasets` — Table 2 dataset stand-ins;
//! * `exactsim-bench` — the figure/table benchmark harness;
//! * `exactsim-examples` — runnable examples.
//!
//! This crate only hosts the cross-crate integration tests under `tests/`.

#![deny(missing_docs)]
