//! Property-based tests (proptest) for the core SimRank invariants, run on
//! randomly generated graphs that span the crates.

use proptest::prelude::*;

use exactsim::config::SimRankConfig;
use exactsim::diagonal::{estimate_local_deterministic, LocalExploreCaps};
use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::metrics::max_error;
use exactsim::power_method::{PowerMethod, PowerMethodConfig};
use exactsim::ppr::{dense_hop_vectors, sparse_hop_vectors};
use exactsim::walks;
use exactsim_graph::io::{parse_edge_list, to_edge_list_string, EdgeListOptions};
use exactsim_graph::linalg::Workspace;
use exactsim_graph::{DiGraph, GraphBuilder};

const SQRT_C: f64 = 0.774_596_669_241_483_4; // sqrt(0.6)

/// Strategy: a random directed graph with 2..=24 nodes and up to 80 edges
/// (self-loops dropped, duplicates removed by the builder).
fn arbitrary_graph() -> impl Strategy<Value = DiGraph> {
    (2usize..=24).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..80);
        edges.prop_map(move |edges| {
            let mut builder = GraphBuilder::new(n);
            for (u, v) in edges {
                builder.add_edge(u, v);
            }
            builder.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn simrank_matrix_is_symmetric_bounded_and_unit_diagonal(graph in arbitrary_graph()) {
        let pm = PowerMethod::compute(&graph, PowerMethodConfig::default()).unwrap();
        let n = graph.num_nodes() as u32;
        for i in 0..n {
            prop_assert_eq!(pm.similarity(i, i), 1.0);
            for j in 0..n {
                let s = pm.similarity(i, j);
                prop_assert!((0.0..=1.0 + 1e-9).contains(&s), "S({},{}) = {}", i, j, s);
                prop_assert!((s - pm.similarity(j, i)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn exact_diagonal_lies_in_its_feasible_interval(graph in arbitrary_graph()) {
        let pm = PowerMethod::compute(&graph, PowerMethodConfig::default()).unwrap();
        let d = pm.exact_diagonal(&graph);
        for (k, &dk) in d.iter().enumerate() {
            prop_assert!(
                (1.0 - 0.6 - 1e-9..=1.0 + 1e-9).contains(&dk),
                "D({k}) = {dk} outside [1-c, 1]"
            );
            if graph.in_degree(k as u32) == 0 {
                prop_assert!((dk - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exactsim_with_exact_diagonal_matches_the_power_method(graph in arbitrary_graph()) {
        let pm = PowerMethod::compute(&graph, PowerMethodConfig::default()).unwrap();
        let solver = ExactSim::new(
            &graph,
            ExactSimConfig {
                epsilon: 1e-6,
                variant: ExactSimVariant::Optimized,
                diagonal: exactsim::exactsim::DiagonalMode::Exact(pm.exact_diagonal(&graph)),
                ..Default::default()
            },
        )
        .unwrap();
        for source in 0..graph.num_nodes() as u32 {
            let result = solver.query(source).unwrap();
            let err = max_error(&result.scores, &pm.single_source(source));
            prop_assert!(err < 1e-5, "source {}: error {}", source, err);
        }
    }

    #[test]
    fn hop_vector_mass_is_conserved_or_lost_never_created(graph in arbitrary_graph()) {
        let hv = dense_hop_vectors(&graph, 0, SQRT_C, 20);
        let mut cumulative = 0.0;
        for (level, hop) in hv.hops.iter().enumerate() {
            let mass: f64 = hop.iter().sum();
            prop_assert!(mass >= -1e-12);
            prop_assert!(
                mass <= (1.0 - SQRT_C) * SQRT_C.powi(level as i32) + 1e-9,
                "level {} mass {} exceeds the survival bound",
                level,
                mass
            );
            cumulative += mass;
        }
        prop_assert!(cumulative <= 1.0 + 1e-9);
    }

    #[test]
    fn sparse_and_dense_hop_vectors_agree_without_pruning(graph in arbitrary_graph()) {
        let n = graph.num_nodes();
        let mut ws = Workspace::new(n);
        let dense = dense_hop_vectors(&graph, 1 % n as u32, SQRT_C, 10);
        let sparse = sparse_hop_vectors(&graph, 1 % n as u32, SQRT_C, 10, 0.0, &mut ws);
        for level in 0..=10 {
            let expanded = sparse.hops[level].to_dense(n);
            for k in 0..n {
                prop_assert!((expanded[k] - dense.hops[level][k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn local_deterministic_diagonal_matches_the_exact_one(graph in arbitrary_graph()) {
        let pm = PowerMethod::compute(&graph, PowerMethodConfig::default()).unwrap();
        let exact = pm.exact_diagonal(&graph);
        let mut ws = Workspace::new(graph.num_nodes());
        let mut rng = walks::make_rng(7);
        for k in 0..graph.num_nodes() as u32 {
            let (estimate, _) = estimate_local_deterministic(
                &graph,
                k,
                10_000,
                SQRT_C,
                1e-6,
                LocalExploreCaps {
                    max_edges: u64::MAX,
                    max_tail_samples: 100,
                    ..Default::default()
                },
                &mut ws,
                &mut rng,
            );
            prop_assert!(
                (estimate - exact[k as usize]).abs() < 2e-3,
                "node {}: {} vs {}",
                k,
                estimate,
                exact[k as usize]
            );
        }
    }

    #[test]
    fn edge_list_round_trip_preserves_the_graph(graph in arbitrary_graph()) {
        let text = to_edge_list_string(&graph);
        let loaded = parse_edge_list(&text, EdgeListOptions::default()).unwrap();
        prop_assert_eq!(loaded.graph.num_edges(), graph.num_edges());
        for (u, v) in graph.iter_edges() {
            // Node ids may be remapped (first-appearance order), so map back.
            let du = loaded.dense_id_of(u as u64).unwrap();
            let dv = loaded.dense_id_of(v as u64).unwrap();
            prop_assert!(loaded.graph.has_edge(du, dv));
        }
    }

    #[test]
    fn walk_sampling_never_visits_nodes_without_in_edges_midway(graph in arbitrary_graph()) {
        let mut rng = walks::make_rng(3);
        let sqrt_c = SimRankConfig::default().sqrt_decay();
        for start in 0..graph.num_nodes() as u32 {
            let walk = walks::sample_walk(&graph, start, sqrt_c, 30, &mut rng);
            let mut current = start;
            for &next in &walk.positions {
                prop_assert!(graph.in_neighbors(current).contains(&next));
                current = next;
            }
        }
    }
}
