//! Property-style tests for the core SimRank invariants, run on randomly
//! generated graphs that span the crates.
//!
//! Originally written against `proptest`; the offline build environment has
//! no crates.io access, so the same properties are exercised here over a
//! deterministic family of seeded random graphs (24 cases per property, the
//! same case count the proptest configuration used). No shrinking, but every
//! failure reproduces exactly from the printed case seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use exactsim::config::SimRankConfig;
use exactsim::diagonal::{estimate_local_deterministic, LocalExploreCaps};
use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::metrics::max_error;
use exactsim::power_method::{PowerMethod, PowerMethodConfig};
use exactsim::ppr::{dense_hop_vectors, sparse_hop_vectors};
use exactsim::walks;
use exactsim_graph::io::{parse_edge_list, to_edge_list_string, EdgeListOptions};
use exactsim_graph::linalg::Workspace;
use exactsim_graph::{DiGraph, GraphBuilder};

const SQRT_C: f64 = 0.774_596_669_241_483_4; // sqrt(0.6)
const CASES: u64 = 24;

/// A random directed graph with 2..=24 nodes and up to 80 edges (self-loops
/// allowed at generation, duplicates removed by the builder) — the same
/// distribution the previous proptest strategy produced.
fn arbitrary_graph(case_seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(0xA5A5_0000 ^ case_seed);
    let n = rng.gen_range(2usize..=24);
    let edges = rng.gen_range(0usize..80);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..edges {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        builder.add_edge(u, v);
    }
    builder.build()
}

fn for_each_case(mut check: impl FnMut(&DiGraph)) {
    for case in 0..CASES {
        let graph = arbitrary_graph(case);
        eprintln!(
            "case {case}: n={} m={}",
            graph.num_nodes(),
            graph.num_edges()
        );
        check(&graph);
    }
}

#[test]
fn simrank_matrix_is_symmetric_bounded_and_unit_diagonal() {
    for_each_case(|graph| {
        let pm = PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap();
        let n = graph.num_nodes() as u32;
        for i in 0..n {
            assert_eq!(pm.similarity(i, i), 1.0);
            for j in 0..n {
                let s = pm.similarity(i, j);
                assert!((0.0..=1.0 + 1e-9).contains(&s), "S({i},{j}) = {s}");
                assert!((s - pm.similarity(j, i)).abs() < 1e-9);
            }
        }
    });
}

#[test]
fn exact_diagonal_lies_in_its_feasible_interval() {
    for_each_case(|graph| {
        let pm = PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap();
        let d = pm.exact_diagonal(graph);
        for (k, &dk) in d.iter().enumerate() {
            assert!(
                (1.0 - 0.6 - 1e-9..=1.0 + 1e-9).contains(&dk),
                "D({k}) = {dk} outside [1-c, 1]"
            );
            if graph.in_degree(k as u32) == 0 {
                assert!((dk - 1.0).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn exactsim_with_exact_diagonal_matches_the_power_method() {
    for_each_case(|graph| {
        let pm = PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap();
        let solver = ExactSim::new(
            graph,
            ExactSimConfig {
                epsilon: 1e-6,
                variant: ExactSimVariant::Optimized,
                diagonal: exactsim::exactsim::DiagonalMode::Exact(pm.exact_diagonal(graph)),
                ..Default::default()
            },
        )
        .unwrap();
        for source in 0..graph.num_nodes() as u32 {
            let result = solver.query(source).unwrap();
            let err = max_error(&result.scores, &pm.single_source(source));
            assert!(err < 1e-5, "source {source}: error {err}");
        }
    });
}

#[test]
fn hop_vector_mass_is_conserved_or_lost_never_created() {
    for_each_case(|graph| {
        let hv = dense_hop_vectors(graph, 0, SQRT_C, 20);
        let mut cumulative = 0.0;
        for (level, hop) in hv.hops.iter().enumerate() {
            let mass: f64 = hop.iter().sum();
            assert!(mass >= -1e-12);
            assert!(
                mass <= (1.0 - SQRT_C) * SQRT_C.powi(level as i32) + 1e-9,
                "level {level} mass {mass} exceeds the survival bound"
            );
            cumulative += mass;
        }
        assert!(cumulative <= 1.0 + 1e-9);
    });
}

#[test]
fn sparse_and_dense_hop_vectors_agree_without_pruning() {
    for_each_case(|graph| {
        let n = graph.num_nodes();
        let mut ws = Workspace::new(n);
        let dense = dense_hop_vectors(graph, 1 % n as u32, SQRT_C, 10);
        let sparse = sparse_hop_vectors(graph, 1 % n as u32, SQRT_C, 10, 0.0, &mut ws);
        for level in 0..=10 {
            let expanded = sparse.hops[level].to_dense(n);
            for (e, d) in expanded.iter().zip(&dense.hops[level]) {
                assert!((e - d).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn local_deterministic_diagonal_matches_the_exact_one() {
    for_each_case(|graph| {
        let pm = PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap();
        let exact = pm.exact_diagonal(graph);
        let mut ws = Workspace::new(graph.num_nodes());
        let mut rng = walks::make_rng(7);
        for k in 0..graph.num_nodes() as u32 {
            let (estimate, _) = estimate_local_deterministic(
                graph,
                k,
                10_000,
                SQRT_C,
                1e-6,
                LocalExploreCaps {
                    max_edges: u64::MAX,
                    max_tail_samples: 100,
                    ..Default::default()
                },
                &mut ws,
                &mut rng,
            );
            assert!(
                (estimate - exact[k as usize]).abs() < 2e-3,
                "node {k}: {estimate} vs {}",
                exact[k as usize]
            );
        }
    });
}

#[test]
fn edge_list_round_trip_preserves_the_graph() {
    for_each_case(|graph| {
        let text = to_edge_list_string(graph);
        let loaded = parse_edge_list(&text, EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_edges(), graph.num_edges());
        for (u, v) in graph.iter_edges() {
            // Node ids may be remapped (first-appearance order), so map back.
            let du = loaded.dense_id_of(u as u64).unwrap();
            let dv = loaded.dense_id_of(v as u64).unwrap();
            assert!(loaded.graph.has_edge(du, dv));
        }
    });
}

#[test]
fn walk_sampling_never_visits_nodes_without_in_edges_midway() {
    for_each_case(|graph| {
        let mut rng = walks::make_rng(3);
        let sqrt_c = SimRankConfig::default().sqrt_decay();
        for start in 0..graph.num_nodes() as u32 {
            let walk = walks::sample_walk(graph, start, sqrt_c, 30, &mut rng);
            let mut current = start;
            for &next in &walk.positions {
                assert!(graph.in_neighbors(current).contains(&next));
                current = next;
            }
        }
    });
}
