//! Property-style tests for the core SimRank invariants, run on randomly
//! generated graphs that span the crates.
//!
//! Originally written against `proptest`; the offline build environment has
//! no crates.io access, so the same properties are exercised here over a
//! deterministic family of seeded random graphs (24 cases per property, the
//! same case count the proptest configuration used). No shrinking, but every
//! failure reproduces exactly from the printed case seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use exactsim::config::SimRankConfig;
use exactsim::diagonal::{estimate_local_deterministic, LocalExploreCaps, LocalNodeStats};
use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::linearization::{Linearization, LinearizationConfig};
use exactsim::mc::{MonteCarlo, MonteCarloConfig};
use exactsim::metrics::max_error;
use exactsim::parsim::{ParSim, ParSimConfig};
use exactsim::power_method::{PowerMethod, PowerMethodConfig};
use exactsim::ppr::{dense_hop_vectors, sparse_hop_vectors};
use exactsim::prsim::{PrSim, PrSimConfig};
use exactsim::scratch::DiagonalScratch;
use exactsim::walks;
use exactsim_graph::generators::{
    barabasi_albert, gnm_directed, stochastic_block_model, SbmConfig,
};
use exactsim_graph::io::{parse_edge_list, to_edge_list_string, EdgeListOptions};
use exactsim_graph::linalg::Workspace;
use exactsim_graph::{DiGraph, GraphBuilder};

const SQRT_C: f64 = 0.774_596_669_241_483_4; // sqrt(0.6)
const CASES: u64 = 24;

/// A random directed graph with 2..=24 nodes and up to 80 edges (self-loops
/// allowed at generation, duplicates removed by the builder) — the same
/// distribution the previous proptest strategy produced.
fn arbitrary_graph(case_seed: u64) -> DiGraph {
    let mut rng = StdRng::seed_from_u64(0xA5A5_0000 ^ case_seed);
    let n = rng.gen_range(2usize..=24);
    let edges = rng.gen_range(0usize..80);
    let mut builder = GraphBuilder::new(n);
    for _ in 0..edges {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        builder.add_edge(u, v);
    }
    builder.build()
}

fn for_each_case(mut check: impl FnMut(&DiGraph)) {
    for case in 0..CASES {
        let graph = arbitrary_graph(case);
        eprintln!(
            "case {case}: n={} m={}",
            graph.num_nodes(),
            graph.num_edges()
        );
        check(&graph);
    }
}

#[test]
fn simrank_matrix_is_symmetric_bounded_and_unit_diagonal() {
    for_each_case(|graph| {
        let pm = PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap();
        let n = graph.num_nodes() as u32;
        for i in 0..n {
            assert_eq!(pm.similarity(i, i), 1.0);
            for j in 0..n {
                let s = pm.similarity(i, j);
                assert!((0.0..=1.0 + 1e-9).contains(&s), "S({i},{j}) = {s}");
                assert!((s - pm.similarity(j, i)).abs() < 1e-9);
            }
        }
    });
}

#[test]
fn exact_diagonal_lies_in_its_feasible_interval() {
    for_each_case(|graph| {
        let pm = PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap();
        let d = pm.exact_diagonal(graph);
        for (k, &dk) in d.iter().enumerate() {
            assert!(
                (1.0 - 0.6 - 1e-9..=1.0 + 1e-9).contains(&dk),
                "D({k}) = {dk} outside [1-c, 1]"
            );
            if graph.in_degree(k as u32) == 0 {
                assert!((dk - 1.0).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn exactsim_with_exact_diagonal_matches_the_power_method() {
    for_each_case(|graph| {
        let pm = PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap();
        let solver = ExactSim::new(
            graph,
            ExactSimConfig {
                epsilon: 1e-6,
                variant: ExactSimVariant::Optimized,
                diagonal: exactsim::exactsim::DiagonalMode::Exact(pm.exact_diagonal(graph)),
                ..Default::default()
            },
        )
        .unwrap();
        for source in 0..graph.num_nodes() as u32 {
            let result = solver.query(source).unwrap();
            let err = max_error(&result.scores, &pm.single_source(source));
            assert!(err < 1e-5, "source {source}: error {err}");
        }
    });
}

#[test]
fn hop_vector_mass_is_conserved_or_lost_never_created() {
    for_each_case(|graph| {
        let hv = dense_hop_vectors(graph, 0, SQRT_C, 20);
        let mut cumulative = 0.0;
        for (level, hop) in hv.hops.iter().enumerate() {
            let mass: f64 = hop.iter().sum();
            assert!(mass >= -1e-12);
            assert!(
                mass <= (1.0 - SQRT_C) * SQRT_C.powi(level as i32) + 1e-9,
                "level {level} mass {mass} exceeds the survival bound"
            );
            cumulative += mass;
        }
        assert!(cumulative <= 1.0 + 1e-9);
    });
}

#[test]
fn sparse_and_dense_hop_vectors_agree_without_pruning() {
    for_each_case(|graph| {
        let n = graph.num_nodes();
        let mut ws = Workspace::new(n);
        let dense = dense_hop_vectors(graph, 1 % n as u32, SQRT_C, 10);
        let sparse = sparse_hop_vectors(graph, 1 % n as u32, SQRT_C, 10, 0.0, &mut ws);
        for level in 0..=10 {
            let expanded = sparse.hops[level].to_dense(n);
            for (e, d) in expanded.iter().zip(&dense.hops[level]) {
                assert!((e - d).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn local_deterministic_diagonal_matches_the_exact_one() {
    for_each_case(|graph| {
        let pm = PowerMethod::compute(graph, PowerMethodConfig::default()).unwrap();
        let exact = pm.exact_diagonal(graph);
        let mut scratch = DiagonalScratch::new(graph.num_nodes());
        let mut rng = walks::make_rng(7);
        for k in 0..graph.num_nodes() as u32 {
            let (estimate, _) = estimate_local_deterministic(
                graph,
                k,
                10_000,
                SQRT_C,
                1e-6,
                LocalExploreCaps {
                    max_edges: u64::MAX,
                    max_tail_samples: 100,
                    ..Default::default()
                },
                &mut scratch,
                &mut rng,
            );
            assert!(
                (estimate - exact[k as usize]).abs() < 2e-3,
                "node {k}: {estimate} vs {}",
                exact[k as usize]
            );
        }
    });
}

#[test]
fn edge_list_round_trip_preserves_the_graph() {
    for_each_case(|graph| {
        let text = to_edge_list_string(graph);
        let loaded = parse_edge_list(&text, EdgeListOptions::default()).unwrap();
        assert_eq!(loaded.graph.num_edges(), graph.num_edges());
        for (u, v) in graph.iter_edges() {
            // Node ids may be remapped (first-appearance order), so map back.
            let du = loaded.dense_id_of(u as u64).unwrap();
            let dv = loaded.dense_id_of(v as u64).unwrap();
            assert!(loaded.graph.has_edge(du, dv));
        }
    });
}

/// A verbatim port of the **seed-era** Algorithm 3 implementation (the
/// `BTreeMap`-based `estimate_local_deterministic` this repo shipped before
/// the Scratch rewrite), kept here as the reference the rewritten kernel is
/// required to be bit-identical to. Uses only public API, so it stays
/// independent of the production code paths.
mod seed_reference {
    use std::collections::BTreeMap;

    use exactsim::diagonal::{LocalExploreCaps, LocalNodeStats};
    use exactsim::walks;
    use exactsim_graph::linalg::{p_multiply_sparse, SparseVec, Workspace};
    use exactsim_graph::{DiGraph, NodeId};
    use rand::rngs::SmallRng;

    fn sample_tail_pair(
        graph: &DiGraph,
        start: NodeId,
        forced: usize,
        sqrt_c: f64,
        max_continue_steps: usize,
        rng: &mut SmallRng,
    ) -> bool {
        let mut a = start;
        let mut b = start;
        for _ in 0..forced {
            let na = walks::step_forced(graph, a, rng);
            let nb = walks::step_forced(graph, b, rng);
            match (na, nb) {
                (Some(x), Some(y)) => {
                    if x == y {
                        return false;
                    }
                    a = x;
                    b = y;
                }
                _ => return false,
            }
        }
        for _ in 0..max_continue_steps {
            let na = walks::step(graph, a, sqrt_c, rng);
            let nb = walks::step(graph, b, sqrt_c, rng);
            match (na, nb) {
                (Some(x), Some(y)) => {
                    if x == y {
                        return true;
                    }
                    a = x;
                    b = y;
                }
                _ => return false,
            }
        }
        false
    }

    #[allow(clippy::too_many_arguments)]
    pub fn estimate_local_deterministic(
        graph: &DiGraph,
        node: NodeId,
        samples: u64,
        sqrt_c: f64,
        tail_skip_threshold: f64,
        caps: LocalExploreCaps,
        workspace: &mut Workspace,
        rng: &mut SmallRng,
    ) -> (f64, LocalNodeStats) {
        let c = sqrt_c * sqrt_c;
        let din = graph.in_degree(node);
        if din == 0 {
            return (1.0, LocalNodeStats::default());
        }
        if din == 1 {
            return (1.0 - c, LocalNodeStats::default());
        }

        let edge_budget = if samples == 0 {
            0
        } else {
            (((2 * samples) as f64) / sqrt_c).ceil() as u64
        };
        let edge_budget = edge_budget.min(caps.max_edges);

        let mut dist: BTreeMap<NodeId, Vec<SparseVec>> = BTreeMap::new();
        dist.insert(node, vec![SparseVec::unit(node, 1.0)]);

        let mut edges_used = 0u64;
        let mut z_levels: Vec<BTreeMap<NodeId, f64>> = Vec::new();
        let mut met_probability = 0.0f64;

        let mut level = 0usize;
        let extend_cost = |v: &SparseVec, graph: &DiGraph| -> u64 {
            v.iter().map(|(j, _)| graph.in_degree(j) as u64).sum()
        };

        while level < caps.max_levels {
            let next_level = level + 1;
            {
                let node_dist = dist.get_mut(&node).expect("source distribution present");
                while node_dist.len() <= next_level {
                    let last = node_dist.last().expect("at least level 0");
                    edges_used += extend_cost(last, graph);
                    let next = p_multiply_sparse(graph, last, workspace);
                    node_dist.push(next);
                }
            }

            let mut z_next: BTreeMap<NodeId, f64> = BTreeMap::new();
            {
                let node_dist = &dist[&node];
                let base = &node_dist[next_level];
                let scale = c.powi(next_level as i32);
                for (q, v) in base.iter() {
                    z_next.insert(q, scale * v * v);
                }
            }
            for t in 1..next_level {
                let remaining = next_level - t;
                let entries: Vec<(NodeId, f64)> = z_levels[t - 1]
                    .iter()
                    .map(|(&q, &v)| (q, v))
                    .filter(|&(_, v)| v > 0.0)
                    .collect();
                for (q_prime, z_val) in entries {
                    let q_dist = dist
                        .entry(q_prime)
                        .or_insert_with(|| vec![SparseVec::unit(q_prime, 1.0)]);
                    while q_dist.len() <= remaining {
                        let last = q_dist.last().expect("at least level 0");
                        edges_used += extend_cost(last, graph);
                        let next = p_multiply_sparse(graph, last, workspace);
                        q_dist.push(next);
                    }
                    let spread = &q_dist[remaining];
                    let factor = c.powi(remaining as i32) * z_val;
                    if factor == 0.0 {
                        continue;
                    }
                    for (q, v) in spread.iter() {
                        *z_next.entry(q).or_insert(0.0) -= factor * v * v;
                    }
                }
            }
            let level_mass: f64 = z_next.values().map(|&v| v.max(0.0)).sum();
            for v in z_next.values_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            met_probability += level_mass;
            z_levels.push(z_next);
            level = next_level;

            let tail_bound = c.powi(level as i32);
            if tail_bound <= tail_skip_threshold {
                break;
            }
            if edges_used >= edge_budget {
                break;
            }
        }

        let mut stats = LocalNodeStats {
            levels: level,
            edges: edges_used,
            tail_pairs: 0,
            tail_skipped: false,
        };

        let tail_bound = c.powi(level as i32);
        let mut d_hat = 1.0 - met_probability;

        if tail_bound <= tail_skip_threshold || samples == 0 {
            stats.tail_skipped = true;
            return (d_hat.clamp(1.0 - c, 1.0), stats);
        }

        let reduced = ((samples as f64) * tail_bound * tail_bound).ceil() as u64;
        let tail_samples = reduced.clamp(1, caps.max_tail_samples);
        let mut tail_hits = 0u64;
        let max_continue_steps = 4 * caps.max_levels;
        for _ in 0..tail_samples {
            if sample_tail_pair(graph, node, level, sqrt_c, max_continue_steps, rng) {
                tail_hits += 1;
            }
        }
        stats.tail_pairs = tail_samples;
        let tail_estimate = tail_bound * tail_hits as f64 / tail_samples as f64;
        d_hat -= tail_estimate;
        (d_hat.clamp(1.0 - c, 1.0), stats)
    }
}

/// The three generated graph families × three seeds the bit-identity
/// properties sweep (the ISSUE-5 acceptance grid).
fn bit_identity_graphs() -> Vec<(String, DiGraph)> {
    let mut graphs = Vec::new();
    for seed in [1u64, 2, 3] {
        graphs.push((
            format!("ba/{seed}"),
            barabasi_albert(60, 2, true, seed).unwrap(),
        ));
        graphs.push((format!("er/{seed}"), gnm_directed(70, 280, seed).unwrap()));
        graphs.push((
            format!("sbm/{seed}"),
            stochastic_block_model(SbmConfig {
                block_sizes: vec![25, 25, 25],
                p_within: 0.15,
                p_between: 0.02,
                seed,
            })
            .unwrap()
            .graph,
        ));
    }
    graphs
}

#[test]
fn scratch_diagonal_kernel_is_bit_identical_to_the_seed_era_implementation() {
    // The Scratch rewrite replaced every BTreeMap accumulator of Algorithm 3
    // with epoch-stamped dense accumulators drained in sorted order. The
    // contract is bit-identity: same inputs, same RNG stream, the *exact*
    // same f64 bits out — including the cost statistics.
    for (name, graph) in bit_identity_graphs() {
        let n = graph.num_nodes();
        let mut seed_ws = Workspace::new(n);
        let mut scratch = DiagonalScratch::new(n);
        for (threshold, samples) in [(0.0, 3_000u64), (1e-4, 50_000)] {
            for k in 0..n as u32 {
                let caps = LocalExploreCaps {
                    max_levels: 12,
                    max_edges: 50_000,
                    max_tail_samples: 500,
                };
                let mut rng_a = walks::make_rng(walks::derive_seed(99, k as u64));
                let mut rng_b = walks::make_rng(walks::derive_seed(99, k as u64));
                let (want, want_stats): (f64, LocalNodeStats) =
                    seed_reference::estimate_local_deterministic(
                        &graph,
                        k,
                        samples,
                        SQRT_C,
                        threshold,
                        caps,
                        &mut seed_ws,
                        &mut rng_a,
                    );
                let (got, got_stats) = estimate_local_deterministic(
                    &graph,
                    k,
                    samples,
                    SQRT_C,
                    threshold,
                    caps,
                    &mut scratch,
                    &mut rng_b,
                );
                assert_eq!(
                    want.to_bits(),
                    got.to_bits(),
                    "{name} node {k} threshold {threshold}: seed-era {want} vs scratch {got}"
                );
                assert_eq!(want_stats, got_stats, "{name} node {k} stats diverged");
            }
        }
    }
}

#[test]
fn all_five_solvers_are_bit_identical_across_scratch_reuse_instances_and_threads() {
    // One query answer per (solver, graph, source) — recomputed through a
    // reused scratch pool, through a fresh solver instance, and with a
    // different thread count — must be the same bit pattern every time.
    for (name, graph) in bit_identity_graphs() {
        let sources = [0u32, (graph.num_nodes() / 2) as u32];
        let run_all = |threads: usize| -> Vec<(String, Vec<f64>)> {
            let simrank = SimRankConfig {
                threads,
                ..SimRankConfig::default()
            };
            let mut outputs = Vec::new();
            let opt = ExactSim::new(
                &graph,
                ExactSimConfig {
                    simrank,
                    epsilon: 1e-2,
                    variant: ExactSimVariant::Optimized,
                    walk_budget: Some(20_000),
                    ..Default::default()
                },
            )
            .unwrap();
            let basic = ExactSim::new(
                &graph,
                ExactSimConfig {
                    simrank,
                    epsilon: 1e-2,
                    variant: ExactSimVariant::Basic,
                    walk_budget: Some(10_000),
                    ..Default::default()
                },
            )
            .unwrap();
            let parsim = ParSim::new(
                &graph,
                ParSimConfig {
                    simrank,
                    iterations: 20,
                },
            )
            .unwrap();
            let lin = Linearization::build(
                &graph,
                LinearizationConfig {
                    simrank,
                    epsilon: 0.1,
                    walk_budget: Some(50_000),
                },
            )
            .unwrap();
            let mc = MonteCarlo::build(
                &graph,
                MonteCarloConfig {
                    simrank,
                    walks_per_node: 40,
                    walk_length: 12,
                },
            )
            .unwrap();
            let prsim = PrSim::build(
                &graph,
                PrSimConfig {
                    simrank,
                    epsilon: 2e-2,
                    walk_budget: Some(20_000),
                    ..Default::default()
                },
            )
            .unwrap();
            for &source in &sources {
                // Query twice so the second pass runs on a warm (reused)
                // scratch; both must match exactly.
                let a = opt.query(source).unwrap().scores;
                let b = opt.query(source).unwrap().scores;
                assert_eq!(a, b, "{name}: warm ExactSim-opt scratch diverged");
                outputs.push((format!("opt/{source}"), a));
                let a = basic.query(source).unwrap().scores;
                let b = basic.query(source).unwrap().scores;
                assert_eq!(a, b, "{name}: warm ExactSim-basic scratch diverged");
                outputs.push((format!("basic/{source}"), a));
                let a = parsim.query(source).unwrap();
                assert_eq!(a, parsim.query(source).unwrap());
                outputs.push((format!("parsim/{source}"), a));
                let a = lin.query(source).unwrap();
                assert_eq!(a, lin.query(source).unwrap());
                outputs.push((format!("lin/{source}"), a));
                let a = mc.query(source).unwrap();
                assert_eq!(a, mc.query(source).unwrap());
                outputs.push((format!("mc/{source}"), a));
                let a = prsim.query(source).unwrap();
                assert_eq!(a, prsim.query(source).unwrap());
                outputs.push((format!("prsim/{source}"), a));
            }
            outputs
        };
        let single = run_all(1);
        let fresh = run_all(1);
        let threaded = run_all(3);
        for (((label, a), (_, b)), (_, c)) in single.iter().zip(&fresh).zip(&threaded) {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a), bits(b), "{name}/{label}: fresh instance diverged");
            assert_eq!(bits(a), bits(c), "{name}/{label}: threads=3 diverged");
        }
    }
}

#[test]
fn walk_sampling_never_visits_nodes_without_in_edges_midway() {
    for_each_case(|graph| {
        let mut rng = walks::make_rng(3);
        let sqrt_c = SimRankConfig::default().sqrt_decay();
        for start in 0..graph.num_nodes() as u32 {
            let walk = walks::sample_walk(graph, start, sqrt_c, 30, &mut rng);
            let mut current = start;
            for &next in &walk.positions {
                assert!(graph.in_neighbors(current).contains(&next));
                current = next;
            }
        }
    });
}
