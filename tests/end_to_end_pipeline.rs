//! Cross-crate integration test: dataset stand-in → ExactSim → top-k,
//! validated against the Power Method.

use exactsim::exactsim::{ExactSim, ExactSimConfig, ExactSimVariant};
use exactsim::metrics::{max_error, precision_at_k};
use exactsim::power_method::{PowerMethod, PowerMethodConfig};
use exactsim::topk::top_k;
use exactsim_datasets::{dataset_by_key, query_sources};

#[test]
fn exactsim_reproduces_ground_truth_on_a_dataset_standin() {
    // A small slice of the ca-GrQc stand-in keeps the O(n²) reference cheap.
    let dataset = dataset_by_key("GQ")
        .expect("registry contains GQ")
        .generate_scaled(0.05)
        .expect("stand-in generation succeeds");
    let graph = &dataset.graph;
    assert!(graph.num_nodes() > 200);

    let truth = PowerMethod::compute(graph, PowerMethodConfig::default())
        .expect("power method fits in memory at this scale");

    let solver = ExactSim::new(
        graph,
        ExactSimConfig {
            epsilon: 1e-3,
            variant: ExactSimVariant::Optimized,
            walk_budget: Some(500_000),
            ..Default::default()
        },
    )
    .expect("configuration is valid");

    for source in query_sources(graph, 3, 1) {
        let result = solver.query(source).expect("query succeeds");
        let exact = truth.single_source(source);
        let err = max_error(&result.scores, &exact);
        assert!(
            err < 5e-3,
            "source {source}: ExactSim error {err} too large on the stand-in"
        );
        // The top-k answer matches the exact top-k almost perfectly.
        let precision = precision_at_k(&result.scores, &exact, source, 50);
        assert!(
            precision >= 0.9,
            "source {source}: precision@50 = {precision}"
        );
        // Top-k extraction is consistent with the raw scores.
        let top = top_k(&result.scores, source, 10);
        for window in top.windows(2) {
            assert!(window[0].score >= window[1].score);
        }
    }
}

#[test]
fn exactsim_convergence_mirrors_the_papers_figure6_argument() {
    // The paper argues ExactSim has converged because the top-500 at ε = 1e-6
    // equals the top-500 at ε = 1e-7. Reproduce the same check (at a smaller
    // scale and k) between two ε levels.
    let dataset = dataset_by_key("WV")
        .expect("registry contains WV")
        .generate_scaled(0.05)
        .expect("stand-in generation succeeds");
    let graph = &dataset.graph;
    let source = query_sources(graph, 1, 3)[0];

    let run = |eps: f64| {
        let solver = ExactSim::new(
            graph,
            ExactSimConfig {
                epsilon: eps,
                walk_budget: Some(300_000),
                ..Default::default()
            },
        )
        .expect("valid config");
        solver.query(source).expect("query succeeds").scores
    };
    let coarse = run(1e-4);
    let fine = run(1e-5);
    let coarse_top: Vec<u32> = top_k(&coarse, source, 50).iter().map(|e| e.node).collect();
    let fine_top: Vec<u32> = top_k(&fine, source, 50).iter().map(|e| e.node).collect();
    let overlap = coarse_top.iter().filter(|n| fine_top.contains(n)).count();
    assert!(
        overlap as f64 >= 0.9 * fine_top.len() as f64,
        "top-k should have converged: overlap {overlap}/{}",
        fine_top.len()
    );
}
