//! Cross-crate integration test: every single-source algorithm, run through
//! the uniform suite interface, agrees with the exact ground truth to within
//! its own accuracy regime on a dataset stand-in.

use exactsim::exactsim::{ExactSimConfig, ExactSimVariant};
use exactsim::linearization::LinearizationConfig;
use exactsim::mc::MonteCarloConfig;
use exactsim::metrics::max_error;
use exactsim::parsim::ParSimConfig;
use exactsim::power_method::{PowerMethod, PowerMethodConfig};
use exactsim::prsim::PrSimConfig;
use exactsim::suite::{
    ExactSimAlgorithm, LinearizationAlgorithm, MonteCarloAlgorithm, ParSimAlgorithm,
    PrSimAlgorithm, SingleSourceAlgorithm,
};
use exactsim_datasets::{dataset_by_key, query_sources};

#[test]
fn all_five_algorithms_track_the_ground_truth() {
    let dataset = dataset_by_key("HT")
        .expect("registry contains HT")
        .generate_scaled(0.03)
        .expect("stand-in generation succeeds");
    let graph = &dataset.graph;
    let truth =
        PowerMethod::compute(graph, PowerMethodConfig::default()).expect("power method runs");
    let sources = query_sources(graph, 2, 11);

    let exactsim = ExactSimAlgorithm::new(
        graph,
        ExactSimConfig {
            epsilon: 1e-3,
            variant: ExactSimVariant::Optimized,
            walk_budget: Some(300_000),
            ..Default::default()
        },
    )
    .expect("valid config");
    let parsim = ParSimAlgorithm::new(
        graph,
        ParSimConfig {
            iterations: 40,
            ..Default::default()
        },
    )
    .expect("valid config");
    let mc = MonteCarloAlgorithm::build(
        graph,
        MonteCarloConfig {
            walks_per_node: 1_000,
            walk_length: 15,
            ..Default::default()
        },
    )
    .expect("valid config");
    let lin = LinearizationAlgorithm::build(
        graph,
        LinearizationConfig {
            epsilon: 0.03,
            walk_budget: Some(2_000_000),
            ..Default::default()
        },
    )
    .expect("valid config");
    let prsim = PrSimAlgorithm::build(
        graph,
        PrSimConfig {
            epsilon: 0.01,
            ..Default::default()
        },
    )
    .expect("valid config");

    // (algorithm, tolerance): each method is held to the accuracy its own
    // configuration promises — ExactSim far tighter than the sampled baselines.
    let cases: Vec<(&dyn SingleSourceAlgorithm, f64)> = vec![
        (&exactsim, 5e-3),
        (&parsim, 0.2),
        (&mc, 0.1),
        (&lin, 0.1),
        (&prsim, 0.1),
    ];
    for &source in &sources {
        let exact = truth.single_source(source);
        for (algo, tolerance) in &cases {
            let output = algo.query(source).expect("query succeeds");
            let err = max_error(&output.scores, &exact);
            assert!(
                err <= *tolerance,
                "{} error {err} exceeds tolerance {tolerance} on source {source}",
                algo.name()
            );
        }
    }
}

#[test]
fn exactsim_is_the_most_accurate_of_the_five() {
    let dataset = dataset_by_key("GQ")
        .expect("registry contains GQ")
        .generate_scaled(0.03)
        .expect("stand-in generation succeeds");
    let graph = &dataset.graph;
    let truth =
        PowerMethod::compute(graph, PowerMethodConfig::default()).expect("power method runs");
    let source = query_sources(graph, 1, 5)[0];
    let exact = truth.single_source(source);

    let exactsim = ExactSimAlgorithm::new(
        graph,
        ExactSimConfig {
            epsilon: 1e-4,
            walk_budget: Some(1_000_000),
            ..Default::default()
        },
    )
    .expect("valid config");
    let exactsim_err = max_error(&exactsim.query(source).expect("query").scores, &exact);

    let parsim = ParSimAlgorithm::new(graph, ParSimConfig::default()).expect("valid config");
    let parsim_err = max_error(&parsim.query(source).expect("query").scores, &exact);

    let mc = MonteCarloAlgorithm::build(
        graph,
        MonteCarloConfig {
            walks_per_node: 400,
            walk_length: 15,
            ..Default::default()
        },
    )
    .expect("valid config");
    let mc_err = max_error(&mc.query(source).expect("query").scores, &exact);

    assert!(
        exactsim_err < parsim_err && exactsim_err < mc_err,
        "ExactSim ({exactsim_err}) should beat ParSim ({parsim_err}) and MC ({mc_err})"
    );
}
