//! End-to-end TCP serving (ISSUE 4 acceptance criterion): concurrent client
//! sockets querying a live `exactsim_service::net` listener while another
//! client commits an edge delta must observe **pre- or post-commit answers,
//! never a mix**, each bit-identical to a direct library call on that
//! epoch's graph; plus graceful drain (`shutdown` folds the WAL into a
//! snapshot on durable stores) and `max_conns` load-shedding.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use exactsim::exactsim::{ExactSim, ExactSimConfig};
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::DiGraph;
use exactsim_service::net::{self, LineClient, NetOptions};
use exactsim_service::{AlgorithmKind, GraphStore, QueryResponse, ServiceConfig, SimRankService};

const SOURCES: u32 = 4;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("exactsim-net-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn test_config() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(50_000),
            ..ExactSimConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn connect(addr: SocketAddr) -> LineClient {
    LineClient::connect(addr).expect("connect to listener")
}

/// [`LineClient::round_trip`] with test-failure context on socket errors.
fn round_trip(client: &mut LineClient, request: &str) -> String {
    client
        .round_trip(request)
        .unwrap_or_else(|e| panic!("request `{request}`: {e}"))
}

/// Extracts the `"scores":[...]` fragment — the part of a reply that must be
/// bit-identical to the library (the reply also carries a per-computation
/// `query_time_us`, which legitimately varies).
fn scores_fragment(json: &str) -> &str {
    let start = json.find("\"scores\":[").expect("reply carries scores");
    let end = json[start..].find(']').expect("scores array closes") + start + 1;
    &json[start..end]
}

fn epoch_of(json: &str) -> u64 {
    let start = json.find("\"epoch\":").expect("reply carries its epoch") + "\"epoch\":".len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric epoch")
}

/// The expected wire fragment for `source` on `graph`: a direct library
/// call, formatted exactly as the server formats it.
fn expected_fragment(graph: &DiGraph, config: &ServiceConfig, epoch: u64, source: u32) -> String {
    let direct = ExactSim::new(graph, config.exactsim.clone())
        .unwrap()
        .query(source)
        .unwrap();
    let response = QueryResponse {
        algorithm: AlgorithmKind::ExactSim,
        epoch,
        source,
        scores: direct.scores,
        query_time: Duration::ZERO,
    };
    scores_fragment(&response.to_json(Some(32))).to_string()
}

#[test]
fn concurrent_sockets_racing_a_commit_see_one_epoch_per_answer_bit_identical_to_the_library() {
    const CLIENTS: usize = 4;
    let config = test_config();
    let pre_graph = Arc::new(barabasi_albert(220, 3, true, 33).unwrap());
    let service = SimRankService::new(Arc::clone(&pre_graph), config.clone()).unwrap();
    let handle = net::serve(
        service.clone(),
        "127.0.0.1:0",
        NetOptions {
            max_conns: 16,
            default_algo: AlgorithmKind::ExactSim,
        },
    )
    .expect("bind an ephemeral port");
    let addr = handle.local_addr();

    // CLIENTS query sockets + the updater rendezvous: every client has
    // answered pre-commit queries before the commit is allowed to race the
    // rest of its traffic.
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let client_threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = connect(addr);
                let mut answers: Vec<(u64, u32, String)> = Vec::new();
                let ask = |client: &mut LineClient, i: usize| {
                    let source = (c as u32 + i as u32) % SOURCES;
                    let reply = round_trip(client, &format!("query {source}"));
                    assert!(
                        !reply.contains("\"error\""),
                        "client {c} request {i}: {reply}"
                    );
                    (
                        epoch_of(&reply),
                        source,
                        scores_fragment(&reply).to_string(),
                    )
                };
                for i in 0..3 {
                    answers.push(ask(&mut client, i));
                }
                barrier.wait();
                for i in 3..23 {
                    answers.push(ask(&mut client, i));
                }
                round_trip(&mut client, "topk 0 5"); // exercise the other verb too
                answers
            })
        })
        .collect();

    let mut updater = connect(addr);
    barrier.wait();
    let staged = round_trip(&mut updater, "addedge 0 219");
    assert!(staged.contains("\"staged\":\"pending\""), "{staged}");
    let committed = round_trip(&mut updater, "commit");
    assert!(
        committed.contains("\"op\":\"commit\"") && committed.contains("\"epoch\":1"),
        "{committed}"
    );

    let answers: Vec<(u64, u32, String)> = client_threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();

    // Ground truth per epoch, from direct library calls on each graph.
    let post_graph = service.store().graph();
    assert!(post_graph.has_edge(0, 219), "commit landed");
    let post_graph = post_graph.as_mem().expect("store is in-memory");
    let expected: Vec<Vec<String>> = [pre_graph.as_ref(), post_graph.as_ref()]
        .into_iter()
        .enumerate()
        .map(|(epoch, graph)| {
            (0..SOURCES)
                .map(|s| expected_fragment(graph, &config, epoch as u64, s))
                .collect()
        })
        .collect();
    for (s, (pre, post)) in expected[0].iter().zip(&expected[1]).enumerate() {
        assert_ne!(
            pre, post,
            "the edge insert must change column {s}, or the test proves nothing"
        );
    }

    // Every answer is wholly pre-commit or wholly post-commit — its declared
    // epoch's library column, bit for bit — never a blend.
    assert_eq!(answers.len(), CLIENTS * 23);
    let mut seen = [0usize; 2];
    for (epoch, source, fragment) in &answers {
        assert!(*epoch <= 1, "unexpected epoch {epoch}");
        seen[*epoch as usize] += 1;
        assert_eq!(
            fragment, &expected[*epoch as usize][*source as usize],
            "epoch-{epoch} answer for source {source} must be bit-identical to the library"
        );
    }
    // The barrier guarantees pre-commit answers; the post-commit side is
    // pinned deterministically below even if the racing phase was all-pre.
    assert!(seen[0] >= CLIENTS * 3, "pre-commit answers: {seen:?}");

    let mut check = connect(addr);
    for s in 0..SOURCES {
        let reply = round_trip(&mut check, &format!("query {s}"));
        assert_eq!(epoch_of(&reply), 1, "post-commit query must serve epoch 1");
        assert_eq!(scores_fragment(&reply), expected[1][s as usize]);
    }

    // Per-connection counters flowed into the shared stats.
    let stats = round_trip(&mut check, "stats");
    assert!(stats.contains("\"connections_rejected\":0"), "{stats}");
    let accepted: u64 = {
        let start =
            stats.find("\"connections_accepted\":").unwrap() + "\"connections_accepted\":".len();
        stats[start..]
            .chars()
            .take_while(|ch| ch.is_ascii_digit())
            .collect::<String>()
            .parse()
            .unwrap()
    };
    assert!(accepted >= (CLIENTS + 2) as u64, "{stats}");

    handle.request_shutdown();
    handle.join();
}

#[test]
fn shutdown_command_drains_the_listener_and_flushes_a_snapshot() {
    let dir = TempDir::new("drain");
    let graph = Arc::new(barabasi_albert(80, 3, true, 5).unwrap());
    {
        let store = Arc::new(GraphStore::create(&dir.0, Arc::clone(&graph)).unwrap());
        let service = SimRankService::with_store(store, test_config()).unwrap();
        let handle = net::serve(service, "127.0.0.1:0", NetOptions::default()).unwrap();
        let addr = handle.local_addr();

        let mut client = connect(addr);
        round_trip(&mut client, "addedge 2 40");
        let committed = round_trip(&mut client, "commit");
        assert!(committed.contains("\"epoch\":1"), "{committed}");
        let ack = round_trip(&mut client, "shutdown");
        assert!(ack.contains("\"op\":\"shutdown\""), "{ack}");

        // The remote command alone drains the server: join returns without
        // this side ever calling request_shutdown.
        handle.join();
        assert!(
            TcpStream::connect(addr).is_err(),
            "listener must be closed after the drain"
        );
    }
    // The drain folded the WAL into a fresh snapshot: recovery sees the
    // committed epoch with nothing left to replay.
    let reopened = GraphStore::open(&dir.0).unwrap();
    assert_eq!(reopened.epoch(), 1);
    assert!(reopened.graph().has_edge(2, 40));
    let durability = reopened.durability().unwrap();
    assert_eq!(durability.wal_records, 0, "WAL folded by the drain");
    assert_eq!(durability.last_snapshot_epoch, 1);
}

#[test]
fn an_endless_unframed_line_is_rejected_with_a_bounded_buffer() {
    let graph = Arc::new(barabasi_albert(40, 3, true, 21).unwrap());
    let service = SimRankService::new(graph, test_config()).unwrap();
    let handle = net::serve(service, "127.0.0.1:0", NetOptions::default()).unwrap();

    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    // One byte past the 64 KiB line cap, never a newline: the server must
    // stop buffering, answer one bad_request line, and hang up — not grow
    // the buffer until the client deigns to frame its request.
    let blob = vec![b'a'; 64 * 1024 + 1];
    stream.write_all(&blob).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"code\":\"bad_request\""), "{reply}");
    assert!(reply.contains("exceeds"), "{reply}");
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0, "closed");

    handle.request_shutdown();
    handle.join();
}

#[test]
fn connections_past_max_conns_are_answered_with_a_capacity_error() {
    let graph = Arc::new(barabasi_albert(60, 3, true, 9).unwrap());
    let service = SimRankService::new(graph, test_config()).unwrap();
    let handle = net::serve(
        service,
        "127.0.0.1:0",
        NetOptions {
            max_conns: 2,
            default_algo: AlgorithmKind::ExactSim,
        },
    )
    .unwrap();
    let addr = handle.local_addr();

    // Two served connections hold both permits...
    let mut first = connect(addr);
    let mut second = connect(addr);
    round_trip(&mut first, "query 0");
    round_trip(&mut second, "query 1");

    // ...so the third is load-shed: the rejection line arrives proactively
    // (no request needed), then the socket is closed.
    let mut third = connect(addr);
    let rejection = third.receive().expect("rejection line");
    assert!(rejection.contains("\"code\":\"capacity\""), "{rejection}");
    let closed = third.receive().expect_err("no second line: closed");
    assert_eq!(closed.kind(), std::io::ErrorKind::UnexpectedEof, "{closed}");

    // Freeing a permit lets new connections in again (the handler notices
    // the EOF within its read-poll tick). A retry racing the rejection
    // close may see a reset instead of the capacity line — both mean "try
    // again".
    drop(first);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let served = loop {
        let mut retry = connect(addr);
        match retry.round_trip("epoch") {
            Ok(reply) if !reply.contains("\"code\":\"capacity\"") => break reply,
            Ok(_) | Err(_) => {}
        }
        assert!(
            std::time::Instant::now() < deadline,
            "permit never released"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(served.contains("\"epoch\":0"), "{served}");

    handle.request_shutdown();
    handle.join();
}
