//! Cross-crate round-trip property (ISSUE 3 acceptance criterion): for any
//! committed durable store, `GraphStore::open` on its data dir yields the
//! same epoch and a `SimRankService` whose query answers are **bit-identical**
//! to the pre-restart service — across algorithms, including after
//! compaction, and for every historical restart point.

use std::path::PathBuf;
use std::sync::Arc;

use exactsim::exactsim::ExactSimConfig;
use exactsim_graph::generators::barabasi_albert;
use exactsim_service::{AlgorithmKind, ServiceConfig, SimRankService};
use exactsim_store::GraphStore;

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("exactsim-persist-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(50_000),
            ..ExactSimConfig::default()
        },
        ..ServiceConfig::default()
    }
}

fn columns(service: &SimRankService) -> Vec<Vec<f64>> {
    let mut all = Vec::new();
    for algo in [
        AlgorithmKind::ExactSim,
        AlgorithmKind::MonteCarlo,
        AlgorithmKind::PrSim,
    ] {
        for source in [0u32, 13, 77] {
            all.push(service.query(algo, source).unwrap().scores.clone());
        }
    }
    all
}

#[test]
fn restarted_service_answers_bit_identically_at_every_epoch() {
    let dir = TempDir::new("round-trip");
    let graph = Arc::new(barabasi_albert(150, 3, true, 7).unwrap());
    let store = Arc::new(GraphStore::create(&dir.0, graph).unwrap());
    let service = SimRankService::with_store(Arc::clone(&store), config()).unwrap();

    // A delta stream with inserts, deletes, and a compaction in the middle.
    let updates: &[(&str, u32, u32)] = &[
        ("ins", 0, 149),
        ("ins", 13, 100),
        ("del", 0, 149),
        ("ins", 77, 13),
    ];
    let mut expected = Vec::new(); // (epoch, columns) after every commit
    for (i, &(op, u, v)) in updates.iter().enumerate() {
        match op {
            "ins" => store.stage_insert(u, v).unwrap(),
            _ => store.stage_delete(u, v).unwrap(),
        };
        let report = service.commit().unwrap();
        assert_eq!(report.epoch, i as u64 + 1);
        if i == 1 {
            store.save().unwrap();
        }
        expected.push((report.epoch, columns(&service)));
    }
    let final_epoch = store.epoch();
    drop(service);
    drop(store);

    // Restart: the recovered service must land on the final epoch and
    // reproduce its answers exactly (same CSR → same deterministic walks →
    // same floats, bit for bit).
    let recovered = Arc::new(GraphStore::open(&dir.0).unwrap());
    assert_eq!(recovered.epoch(), final_epoch);
    let service2 = SimRankService::with_store(Arc::clone(&recovered), config()).unwrap();
    let (_, final_columns) = expected.last().unwrap();
    assert_eq!(&columns(&service2), final_columns);

    // And the pair keeps evolving together: a post-restart commit advances
    // from the recovered epoch, and yet another reopen still agrees.
    recovered.stage_insert(100, 0).unwrap();
    assert_eq!(service2.commit().unwrap().epoch, final_epoch + 1);
    let cols_after = columns(&service2);
    drop(service2);
    drop(recovered);

    let reopened = Arc::new(GraphStore::open(&dir.0).unwrap());
    assert_eq!(reopened.epoch(), final_epoch + 1);
    let service3 = SimRankService::with_store(reopened, config()).unwrap();
    assert_eq!(columns(&service3), cols_after);

    // Operator-visible durability state flows through service stats.
    let stats = service3.stats();
    assert_eq!(stats.epoch, final_epoch + 1);
    assert_eq!(stats.last_snapshot_epoch, Some(2), "saved at epoch 2");
    assert_eq!(stats.wal_len, Some(3), "three commits since the save");
    assert!(stats
        .data_dir
        .as_deref()
        .is_some_and(|d| d.contains("exactsim-persist-it-round-trip")));
}
