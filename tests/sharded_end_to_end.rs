//! Sharded serving tier acceptance (tentpole): a 4-shard in-process
//! [`ShardRouter`] must be **observationally identical** to a single
//! unsharded service on the same graph — `query` and `topk` replies bit
//! for bit across all three servable algorithms (the per-request
//! `query_time_us` is the one legitimately varying field) — and a commit
//! raced against concurrent routed queries must never yield an answer
//! mixing epochs: every reply is wholly pre- or wholly post-commit,
//! bit-identical to a direct library call on that epoch's graph.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use exactsim::exactsim::{ExactSim, ExactSimConfig};
use exactsim_graph::generators::barabasi_albert;
use exactsim_graph::DiGraph;
use exactsim_router::{LocalShard, ShardBackend, ShardRouter};
use exactsim_service::protocol::{parse_line, Outcome, Request};
use exactsim_service::{AlgorithmKind, QueryResponse, ServiceConfig, SimRankService};

const SHARDS: usize = 4;

fn test_config() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        exactsim: ExactSimConfig {
            epsilon: 1e-2,
            walk_budget: Some(50_000),
            ..ExactSimConfig::default()
        },
        ..ServiceConfig::default()
    }
}

/// A router over `SHARDS` in-process replicas of `graph`, plus a clone of
/// shard 0's service so the test can reach the post-commit graph.
fn make_router(graph: &Arc<DiGraph>, config: &ServiceConfig) -> (ShardRouter, SimRankService) {
    let services: Vec<SimRankService> = (0..SHARDS)
        .map(|_| SimRankService::new(Arc::clone(graph), config.clone()).expect("build shard"))
        .collect();
    let witness = services[0].clone();
    let shards: Vec<Box<dyn ShardBackend>> = services
        .into_iter()
        .map(|s| Box::new(LocalShard::new(s)) as Box<dyn ShardBackend>)
        .collect();
    (
        ShardRouter::new(shards).expect("router over live shards"),
        witness,
    )
}

/// Executes one protocol line and returns the reply JSON.
fn ask(router: &ShardRouter, line: &str) -> String {
    let request = parse_line(line)
        .unwrap_or_else(|e| panic!("`{line}`: {}", e.message))
        .unwrap_or_else(|| panic!("`{line}` parsed to nothing"));
    match router.execute(AlgorithmKind::ExactSim, &request) {
        Outcome::Reply(reply) => reply,
        other => panic!("`{line}`: unexpected outcome {other:?}"),
    }
}

/// Same, against the unsharded baseline service.
fn ask_unsharded(service: &SimRankService, line: &str) -> String {
    let request = parse_line(line).unwrap().unwrap();
    match exactsim_service::protocol::execute(service, AlgorithmKind::ExactSim, &request) {
        Outcome::Reply(reply) => reply,
        other => panic!("`{line}`: unexpected outcome {other:?}"),
    }
}

/// Zeroes the `"query_time_us":<n>` field — the only part of a reply allowed
/// to differ between the sharded and unsharded paths.
fn strip_query_time(json: &str) -> String {
    let Some(at) = json.find("\"query_time_us\":") else {
        return json.to_string();
    };
    let vstart = at + "\"query_time_us\":".len();
    let vend = json[vstart..]
        .find(|c: char| !c.is_ascii_digit())
        .map_or(json.len(), |o| vstart + o);
    format!("{}0{}", &json[..vstart], &json[vend..])
}

fn epoch_of(json: &str) -> u64 {
    let start = json.find("\"epoch\":").expect("reply carries its epoch") + "\"epoch\":".len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric epoch")
}

fn scores_fragment(json: &str) -> &str {
    let start = json.find("\"scores\":[").expect("reply carries scores");
    let end = json[start..].find(']').expect("scores array closes") + start + 1;
    &json[start..end]
}

#[test]
fn four_shard_router_is_bit_identical_to_the_unsharded_service_across_all_algorithms() {
    let graph = Arc::new(barabasi_albert(160, 3, true, 11).unwrap());
    let config = test_config();
    let unsharded = SimRankService::new(Arc::clone(&graph), config.clone()).unwrap();
    let (router, _witness) = make_router(&graph, &config);
    assert_eq!(router.num_shards(), SHARDS);

    for algo in AlgorithmKind::ALL {
        for source in [0u32, 7, 42, 133] {
            // Full single-source column: routed to the owning shard, which
            // computes the same full replica column the baseline computes.
            let line = format!("query {source} {algo}");
            let routed = ask(&router, &line);
            let direct = ask_unsharded(&unsharded, &line);
            assert!(!routed.contains("\"error\""), "{line}: {routed}");
            assert_eq!(
                strip_query_time(&routed),
                strip_query_time(&direct),
                "{algo} query {source}: sharding must be invisible"
            );

            // Top-k: scatter/gathered from per-shard `shardtopk` candidates
            // and merged — must reproduce the baseline ranking bit for bit,
            // ties and all.
            let line = format!("topk {source} 9 {algo}");
            let routed = ask(&router, &line);
            let direct = ask_unsharded(&unsharded, &line);
            assert!(!routed.contains("\"error\""), "{line}: {routed}");
            assert_eq!(
                strip_query_time(&routed),
                strip_query_time(&direct),
                "{algo} topk {source}: gather merge must be bit-identical"
            );
        }
    }

    // The shard-restricted verb itself round-trips through the router (it
    // addresses backend `shard % num_shards`); the union of the per-shard
    // answers is what the gather above merged.
    let shard_reply = ask(&router, "shardtopk 7 5 2 4");
    assert!(
        shard_reply.contains("\"shard\":2,\"num_shards\":4"),
        "{shard_reply}"
    );
}

#[test]
fn a_commit_raced_against_routed_queries_never_yields_a_mixed_epoch_answer() {
    const CLIENTS: usize = 4;
    const SOURCES: u32 = 4;
    let pre_graph = Arc::new(barabasi_albert(220, 3, true, 33).unwrap());
    let config = test_config();
    let (router, witness) = make_router(&pre_graph, &config);
    let router = Arc::new(router);

    // CLIENTS query threads + the updater rendezvous: every thread has
    // answered pre-commit queries before the commit is allowed to race.
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let router = Arc::clone(&router);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut answers: Vec<(u64, u32, String)> = Vec::new();
                let ask_one = |i: usize| {
                    let source = (c as u32 + i as u32) % SOURCES;
                    let reply = ask(&router, &format!("query {source}"));
                    assert!(!reply.contains("\"error\""), "client {c} req {i}: {reply}");
                    (
                        epoch_of(&reply),
                        source,
                        scores_fragment(&reply).to_string(),
                    )
                };
                for i in 0..3 {
                    answers.push(ask_one(i));
                }
                barrier.wait();
                for i in 3..23 {
                    answers.push(ask_one(i));
                }
                // Gathers race the commit barrier too: a topk mid-commit
                // must come back whole, from a single epoch.
                let gathered = ask(&router, "topk 0 5");
                assert!(!gathered.contains("\"error\""), "{gathered}");
                assert!(epoch_of(&gathered) <= 1, "{gathered}");
                answers
            })
        })
        .collect();

    barrier.wait();
    let staged = ask(&router, "addedge 0 219");
    assert!(staged.contains("\"staged\":\"pending\""), "{staged}");
    let committed = router.execute(AlgorithmKind::ExactSim, &Request::Commit);
    let committed = match committed {
        Outcome::Reply(reply) => reply,
        other => panic!("commit: {other:?}"),
    };
    assert!(
        committed.contains("\"op\":\"commit\"") && committed.contains("\"epoch\":1"),
        "{committed}"
    );
    assert_eq!(router.epoch(), 1, "router publishes the barrier epoch");

    let answers: Vec<(u64, u32, String)> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client thread"))
        .collect();

    // Ground truth per epoch from direct library calls on each graph.
    let post_graph = witness.store().graph();
    assert!(post_graph.has_edge(0, 219), "commit landed on every shard");
    let post_graph = post_graph.as_mem().expect("witness store is in-memory");
    let expected: Vec<Vec<String>> = [pre_graph.as_ref(), post_graph.as_ref()]
        .into_iter()
        .enumerate()
        .map(|(epoch, graph)| {
            (0..SOURCES)
                .map(|s| {
                    let direct = ExactSim::new(graph, config.exactsim.clone())
                        .unwrap()
                        .query(s)
                        .unwrap();
                    let response = QueryResponse {
                        algorithm: AlgorithmKind::ExactSim,
                        epoch: epoch as u64,
                        source: s,
                        scores: direct.scores,
                        query_time: Duration::ZERO,
                    };
                    scores_fragment(&response.to_json(Some(32))).to_string()
                })
                .collect()
        })
        .collect();
    for (s, (pre, post)) in expected[0].iter().zip(&expected[1]).enumerate() {
        assert_ne!(
            pre, post,
            "the edge insert must change column {s}, or the test proves nothing"
        );
    }

    // Every routed answer is wholly pre- or wholly post-commit: its declared
    // epoch's library column, bit for bit — never a blend across shards or
    // across the commit.
    assert_eq!(answers.len(), CLIENTS * 23);
    let mut seen = [0usize; 2];
    for (epoch, source, fragment) in &answers {
        assert!(*epoch <= 1, "unexpected epoch {epoch}");
        seen[*epoch as usize] += 1;
        assert_eq!(
            fragment, &expected[*epoch as usize][*source as usize],
            "epoch-{epoch} answer for source {source} must match the library"
        );
    }
    assert!(seen[0] >= CLIENTS * 3, "pre-commit answers: {seen:?}");

    // Deterministic post-commit pin: after the barrier, every source serves
    // epoch 1, and a gather merges only epoch-1 candidates.
    for s in 0..SOURCES {
        let reply = ask(&router, &format!("query {s}"));
        assert_eq!(epoch_of(&reply), 1, "post-commit query serves epoch 1");
        assert_eq!(scores_fragment(&reply), expected[1][s as usize]);
    }
    let gathered = ask(&router, "topk 0 6");
    assert_eq!(epoch_of(&gathered), 1, "{gathered}");

    // The router's own epoch verb agrees with every shard.
    let epochs = ask(&router, "epoch");
    assert!(epochs.contains("\"epoch\":1"), "{epochs}");
    router.drain();
}
