//! Smoke test for the benchmark harness: a miniature figure run end to end.

use exactsim_bench::ground_truth::{ground_truth_exactsim, ground_truth_power_method};
use exactsim_bench::{run_quality_sweep, AlgorithmFamily, HarnessParams, SweepRow};
use exactsim_datasets::{dataset_by_key, query_sources};

fn tiny_params() -> HarnessParams {
    HarnessParams {
        scale_small: 0.02,
        scale_large: Some(0.0005),
        queries: 2,
        walk_budget: 30_000,
        ..Default::default()
    }
}

#[test]
fn miniature_figure1_run_produces_consistent_rows() {
    let params = tiny_params();
    let dataset = dataset_by_key("GQ")
        .expect("registry contains GQ")
        .generate_scaled(params.scale_small)
        .expect("stand-in generation succeeds");
    let sources = query_sources(&dataset.graph, params.queries, params.seed);
    let truth = ground_truth_power_method(&dataset.graph, &sources).expect("ground truth");
    let rows = run_quality_sweep("GQ", &dataset.graph, &truth, &params, AlgorithmFamily::All);

    assert!(
        rows.len() >= 10,
        "expected a full sweep, got {} rows",
        rows.len()
    );
    let exactsim_rows: Vec<&SweepRow> = rows.iter().filter(|r| r.algorithm == "ExactSim").collect();
    assert!(exactsim_rows.len() >= 5);
    // Every row is internally consistent.
    for row in &rows {
        assert!(row.max_error.is_finite() && row.max_error >= 0.0);
        assert!((0.0..=1.0).contains(&row.precision_at_500));
        assert!(row.query_seconds >= 0.0);
        assert_eq!(row.dataset, "GQ");
        assert_eq!(
            row.to_csv().split(',').count(),
            SweepRow::csv_header().split(',').count()
        );
    }
    // The headline qualitative claim: the best ExactSim configuration is more
    // accurate than the best ParSim configuration (ParSim is biased).
    let best = |name: &str| {
        rows.iter()
            .filter(|r| r.algorithm == name)
            .map(|r| r.max_error)
            .fold(f64::INFINITY, f64::min)
    };
    assert!(
        best("ExactSim") < best("ParSim"),
        "ExactSim best error {} should beat ParSim best error {}",
        best("ExactSim"),
        best("ParSim")
    );
}

#[test]
fn miniature_large_graph_run_uses_exactsim_reference() {
    let params = tiny_params();
    let dataset = dataset_by_key("DB")
        .expect("registry contains DB")
        .generate_scaled(params.scale_large.unwrap())
        .expect("stand-in generation succeeds");
    let sources = query_sources(&dataset.graph, 1, params.seed);
    let truth = ground_truth_exactsim(&dataset.graph, &sources, params.walk_budget, params.seed)
        .expect("ExactSim reference");
    assert!(truth.method.contains("1e-7"));
    let rows = run_quality_sweep(
        "DB",
        &dataset.graph,
        &truth,
        &params,
        AlgorithmFamily::ExactSimVariantsOnly,
    );
    assert!(rows.iter().any(|r| r.algorithm == "ExactSim-Opt"));
    assert!(rows.iter().any(|r| r.algorithm == "ExactSim-Basic"));
    // The reference configuration itself appears in the sweep and must agree
    // with the reference almost perfectly.
    let tightest = rows
        .iter()
        .filter(|r| r.algorithm == "ExactSim-Opt")
        .min_by(|a, b| a.max_error.partial_cmp(&b.max_error).unwrap())
        .unwrap();
    assert!(tightest.max_error < 1e-2);
}
